"""The formal strategy protocol the simulation kernel drives.

Any object exposing this surface can be replayed by the
:class:`~repro.sim.engine.SimulationEngine` -- the online strategies of
:mod:`repro.dynamic.online` implement it, and future scheduling/sharding
strategies plug in here without touching the kernel.
"""

from __future__ import annotations

from typing import Protocol, Set, runtime_checkable

from repro.errors import SimulationError

__all__ = ["PlacementStrategy", "validate_strategy"]

_REQUIRED_METHODS = ("serve", "serve_chunk", "apply_mutation", "holders")
_REQUIRED_ATTRS = ("network", "account")


@runtime_checkable
class PlacementStrategy(Protocol):
    """Structural protocol of a replayable data-management strategy.

    Attributes
    ----------
    network:
        The current :class:`~repro.network.tree.HierarchicalBusNetwork`
        (kept up to date across mutations by :meth:`apply_mutation`).
    account:
        The strategy's cost account; must expose the incremental
        :class:`~repro.core.loadstate.LoadState` as ``account.state`` and
        the derived ``congestion`` / ``total_load`` reads.
    """

    network: object
    account: object

    def serve(self, event) -> None:
        """Serve one request event, charging its cost to ``account``."""

    def serve_chunk(self, sequence, start: int, stop: int) -> None:
        """Serve ``sequence[start:stop]``.

        Must produce bit-for-bit the loads of serving the same events one
        by one through :meth:`serve`; strategies that cannot vectorize
        fall back to the event loop.
        """

    def apply_mutation(self, outcome) -> None:
        """Carry the strategy and its account over a topology mutation."""

    def holders(self, obj: int) -> Set[int]:
        """Current holder set of an object (inspection / tests)."""


def validate_strategy(strategy) -> None:
    """Raise :class:`~repro.errors.SimulationError` unless ``strategy``
    structurally implements :class:`PlacementStrategy`."""
    missing = [
        name
        for name in _REQUIRED_METHODS
        if not callable(getattr(strategy, name, None))
    ]
    missing += [name for name in _REQUIRED_ATTRS if not hasattr(strategy, name)]
    if missing:
        raise SimulationError(
            f"{type(strategy).__name__} does not implement the "
            f"PlacementStrategy protocol: missing {', '.join(sorted(missing))}"
        )
