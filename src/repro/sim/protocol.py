"""The formal strategy protocol the simulation kernel drives.

Any object exposing this surface can be replayed by the
:class:`~repro.sim.engine.SimulationEngine` -- the online strategies of
:mod:`repro.dynamic.online` implement it, and future scheduling/sharding
strategies plug in here without touching the kernel.

**Fleet capability.**  A strategy *class* may additionally expose a
``serve_chunk_fleet(members, sequence, start, stop)`` classmethod: given
several instances of that class whose cost accounts sit on lanes of one
shared :class:`~repro.core.loadstate.StackedLoadState`, it serves the
chunk for all of them in one batched pass (shared aggregation and
edge-batch gathers, per-lane placement decisions).  It must produce
bit-for-bit the loads and cost units of calling each member's
``serve_chunk`` separately; strategies without the hook are simply served
one by one by the fleet engine, so custom strategies stay exact without
opting in.  Both the static managers and the adaptive counter family of
:mod:`repro.dynamic.online` implement the hook.  :func:`fleet_groups` is
the partitioning rule the engine uses.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Set, Tuple, runtime_checkable

from repro.errors import SimulationError

__all__ = ["PlacementStrategy", "validate_strategy", "fleet_groups"]

_REQUIRED_METHODS = ("serve", "serve_chunk", "apply_mutation", "holders")
_REQUIRED_ATTRS = ("network", "account")


@runtime_checkable
class PlacementStrategy(Protocol):
    """Structural protocol of a replayable data-management strategy.

    Attributes
    ----------
    network:
        The current :class:`~repro.network.tree.HierarchicalBusNetwork`
        (kept up to date across mutations by :meth:`apply_mutation`).
    account:
        The strategy's cost account; must expose the incremental
        :class:`~repro.core.loadstate.LoadState` as ``account.state`` and
        the derived ``congestion`` / ``total_load`` reads.
    """

    network: object
    account: object

    def serve(self, event) -> None:
        """Serve one request event, charging its cost to ``account``."""

    def serve_chunk(self, sequence, start: int, stop: int) -> None:
        """Serve ``sequence[start:stop]``.

        Must produce bit-for-bit the loads of serving the same events one
        by one through :meth:`serve`; strategies that cannot vectorize
        fall back to the event loop.
        """

    def apply_mutation(self, outcome) -> None:
        """Carry the strategy and its account over a topology mutation."""

    def holders(self, obj: int) -> Set[int]:
        """Current holder set of an object (inspection / tests)."""


def validate_strategy(strategy) -> None:
    """Raise :class:`~repro.errors.SimulationError` unless ``strategy``
    structurally implements :class:`PlacementStrategy`."""
    missing = [
        name
        for name in _REQUIRED_METHODS
        if not callable(getattr(strategy, name, None))
    ]
    missing += [name for name in _REQUIRED_ATTRS if not hasattr(strategy, name)]
    if missing:
        raise SimulationError(
            f"{type(strategy).__name__} does not implement the "
            f"PlacementStrategy protocol: missing {', '.join(sorted(missing))}"
        )


def fleet_groups(
    strategies: Sequence[object],
) -> List[Tuple[Optional[type], List[object]]]:
    """Partition a strategy fleet into batched groups and singletons.

    Strategies whose class defines the ``serve_chunk_fleet`` hook are
    grouped by exact class (one batched call per class and serve span);
    every other strategy forms a ``(None, [strategy])`` entry served
    through its own ``serve_chunk``.  Group order follows first
    appearance, members keep fleet order -- the partition is deterministic
    so fleet replays are reproducible.
    """
    groups: List[Tuple[Optional[type], List[object]]] = []
    index: dict = {}
    for strategy in strategies:
        hook = getattr(type(strategy), "serve_chunk_fleet", None)
        if callable(hook):
            key = type(strategy)
            if key in index:
                groups[index[key]][1].append(strategy)
            else:
                index[key] = len(groups)
                groups.append((key, [strategy]))
        else:
            groups.append((None, [strategy]))
    return groups
