"""Declarative scenario registry: simulations from plain dicts / JSON.

A :class:`ScenarioSpec` names every ingredient of a simulation by registry
key -- network builder, workload, churn generators, strategies and metrics
sinks -- with plain-data arguments, so new scenarios are *declared*
instead of hand-coded as yet another replay loop.  The spec round-trips
through JSON (``to_json`` / ``from_json``), which is what the ``repro
simulate --spec file.json`` workflow runs end-to-end.

Two argument conveniences keep the language expressive enough for the
existing suites:

* churn generator arguments may be written relative to the (not yet
  built) request sequence: ``{"events_div": 4}`` resolves to
  ``n_events // 4`` and ``{"events_div": 8, "min": 1}`` to
  ``max(1, n_events // 8)``;
* the ``flash-crowd`` workload kind couples workload and churn (the
  newcomer requests address processors that only exist once the attach
  burst lands), optionally with a *recovery* phase in which the crowd
  departs again.

**Seed determinism.**  Every seed a spec may carry (`sequence_seed`,
generator/churn/network ``args`` seeds, the flash-crowd ``trace_seed`` /
``crowd_seed``) is *optional* in the document -- but an omitted seed never
falls back to OS entropy.  Missing seeds are derived deterministically
from the spec's canonical hash and the role of the seed
(:func:`_derived_seed`), so the same spec document always materialises
the same sequences and traces: the lab registry's
``(spec_hash, seed) -> artifact`` contract holds for hand-written specs
exactly as it does for the registered families (which all pin their
seeds explicitly).

:data:`SCENARIO_FAMILIES` maps scenario names to spec factories
parameterised by ``(seed, small, large)``; the E9 streaming suite
(``zipf``, ``adversarial``, ``phase-shift``) and the E10 churn suite
(``flash-crowd``, ``maintenance``, ``degradation``, ``storm``) are
re-expressed here, joined by three new families: ``adversarial-storm``
(mutation storm under write-heavy bisection traffic),
``flash-crowd-recovery`` (multi-phase crowd arrival and departure) and
``fleet-sweep`` (one spec swept over network sizes).
:func:`run_scenario` drives every strategy of a built scenario through the
:class:`~repro.sim.engine.SimulationEngine` and returns plain-dict
records, the shared currency of experiments, benchmarks and the CLI.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.online import (
    EdgeCounterManager,
    HysteresisCounterManager,
    RentOrBuyManager,
)
from repro.dynamic.sequence import (
    READ,
    RequestEvent,
    RequestSequence,
    phase_change_sequence,
    sequence_from_pattern,
)
from repro.errors import SimulationError
from repro.network.builders import (
    balanced_tree,
    fat_tree,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)
from repro.network.mutation import ChurnTrace
from repro.network.tree import HierarchicalBusNetwork
from repro.sim.sinks import (
    CostBreakdownSink,
    DropAccountingSink,
    MetricsSink,
    TrajectorySink,
)
from repro.workload.adversarial import (
    bisection_stress,
    replication_trap,
    write_conflict_pattern,
)
from repro.workload.churn import (
    bandwidth_degradation,
    flash_crowd_attach,
    flash_crowd_recovery,
    mutation_storm,
    rolling_maintenance_detach,
)
from repro.workload.generators import (
    hotspot_pattern,
    subtree_local_pattern,
    uniform_pattern,
    zipf_pattern,
    zipf_weights,
)
from repro.workload.traces import (
    producer_consumer_trace,
    shared_counter_trace,
    web_cache_trace,
)

__all__ = [
    "ScenarioSpec",
    "BuiltScenario",
    "SCENARIO_FAMILIES",
    "NETWORK_BUILDERS",
    "PATTERN_GENERATORS",
    "CHURN_GENERATORS",
    "scenario_spec",
    "register_scenario",
    "list_scenarios",
    "build_scenario",
    "run_scenario",
]

SPEC_FORMAT = "repro.scenario-spec/v1"


# --------------------------------------------------------------------------- #
# component registries
# --------------------------------------------------------------------------- #
NETWORK_BUILDERS: Dict[str, Callable[..., HierarchicalBusNetwork]] = {
    "balanced-tree": balanced_tree,
    "single-bus": single_bus,
    "star-of-buses": star_of_buses,
    "path-of-buses": path_of_buses,
    "fat-tree": fat_tree,
    "random-tree": random_tree,
}

PATTERN_GENERATORS: Dict[str, Callable] = {
    "uniform": uniform_pattern,
    "zipf": zipf_pattern,
    "hotspot": hotspot_pattern,
    "subtree-local": subtree_local_pattern,
    "bisection-stress": bisection_stress,
    "write-conflict": write_conflict_pattern,
    "replication-trap": replication_trap,
    "web-cache": web_cache_trace,
    "shared-counter": shared_counter_trace,
    "producer-consumer": producer_consumer_trace,
}

CHURN_GENERATORS: Dict[str, Callable] = {
    "flash-crowd-attach": flash_crowd_attach,
    "flash-crowd-recovery": flash_crowd_recovery,
    "rolling-maintenance-detach": rolling_maintenance_detach,
    "bandwidth-degradation": bandwidth_degradation,
    "mutation-storm": mutation_storm,
}


# --------------------------------------------------------------------------- #
# the spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One simulation scenario as plain data.

    Attributes
    ----------
    name / description:
        Identity and one-line summary.
    network:
        ``{"builder": <NETWORK_BUILDERS key>, "args": {...}}``.
    workload:
        One of three kinds (see :func:`_build_workload`):
        ``{"kind": "pattern", "generator": <PATTERN_GENERATORS key>,
        "args": {...}, "sequence_seed": int}``,
        ``{"kind": "phases", "phases": [{"generator": ..., "args": ...},
        ...], "sequence_seed": int}`` or
        ``{"kind": "flash-crowd", ...}`` (couples workload and churn).
    churn:
        Tuple of ``{"generator": <CHURN_GENERATORS key>, "args": {...}}``
        entries; traces are merged in order.  Argument values may be
        ``{"events_div": k[, "min": m]}`` (resolved against the built
        sequence length).
    strategies:
        Tuple of ``{"kind": "hindsight-static" | "edge-counter" |
        "hysteresis" | "rent-or-buy" | "first-touch", "args": {...}}``
        (an optional ``"label"`` names the run in records; it defaults
        to the kind).
    sinks:
        Tuple of ``{"kind": "trajectory" | "cost-breakdown" | "drops",
        "args": {...}}``; one fresh sink set is built per strategy run.
    sweep:
        Optional tuple of ``{"label": str, "network_args": {...}}``
        overrides, each producing one sub-scenario (a fleet sweep).
    """

    name: str
    description: str
    network: Mapping
    workload: Mapping
    churn: Tuple[Mapping, ...] = ()
    strategies: Tuple[Mapping, ...] = (
        {"kind": "hindsight-static"},
        {"kind": "edge-counter"},
    )
    sinks: Tuple[Mapping, ...] = (
        {"kind": "trajectory", "args": {"samples": 4}},
        {"kind": "cost-breakdown"},
        {"kind": "drops"},
    )
    sweep: Optional[Tuple[Mapping, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-serialisable document (tuples become lists)."""
        return json.loads(self.to_json())

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON encoding of the spec."""
        payload = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "description": self.description,
            "network": dict(self.network),
            "workload": dict(self.workload),
            "churn": [dict(c) for c in self.churn],
            "strategies": [dict(s) for s in self.strategies],
            "sinks": [dict(s) for s in self.sinks],
            "sweep": [dict(s) for s in self.sweep] if self.sweep is not None else None,
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_dict(cls, document: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (accepts lists where tuples live)."""
        fmt = document.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise SimulationError(f"unknown scenario-spec format {fmt!r}")
        sweep = document.get("sweep")
        kwargs = {}
        # absent keys fall back to the dataclass defaults, but an explicit
        # (even empty) list is preserved so from_json inverts to_json exactly
        for key in ("churn", "strategies", "sinks"):
            if document.get(key) is not None:
                kwargs[key] = tuple(document[key])
        return cls(
            name=document["name"],
            description=document.get("description", ""),
            network=document["network"],
            workload=document["workload"],
            sweep=tuple(sweep) if sweep is not None else None,
            **kwargs,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def canonical_json(self) -> str:
        """The canonical (hashable) encoding of the spec.

        Keys are sorted recursively and separators are fixed, so the
        encoding -- and therefore :meth:`spec_hash` -- is invariant under
        dict key order, JSON round-trips (``from_json(to_json(...))``)
        and list/tuple representation of the sequence fields.  Any change
        to the *content* of the spec (network, workload, churn,
        strategies, sinks, sweep, embedded seeds) changes the encoding.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def spec_hash(self) -> str:
        """SHA-256 of :meth:`canonical_json` (the lab registry's key).

        This is the ``spec_hash`` component of the persistent run
        registry's ``(spec_hash, seed, engine_version)`` key (see
        :mod:`repro.lab.registry`): two specs share a hash iff their
        JSON round-trip forms are identical.
        """
        import hashlib

        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()


@dataclass
class BuiltScenario:
    """One materialised (sub-)scenario, ready to replay."""

    name: str
    label: str
    network: HierarchicalBusNetwork
    sequence: RequestSequence
    trace: Optional[ChurnTrace]
    strategies: List[Tuple[str, Callable[[], object]]] = field(default_factory=list)
    sink_specs: Tuple[Mapping, ...] = ()

    def make_sinks(self) -> List[MetricsSink]:
        """Build one fresh sink set (per strategy run)."""
        return [_build_sink(spec, len(self.sequence)) for spec in self.sink_specs]


# --------------------------------------------------------------------------- #
# builders
# --------------------------------------------------------------------------- #
def _derived_seed(root: str, role: str) -> int:
    """Deterministic fallback seed for a spec role without an explicit one.

    ``root`` is the spec's canonical hash and ``role`` names the seed's
    position in the document (e.g. ``"workload.sequence_seed"`` or
    ``"churn[0].args.seed"``), so distinct roles of one spec get
    independent seeds while the same document always derives the same
    values -- never OS entropy.
    """
    digest = hashlib.sha256(f"{root}:{role}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


class _SpecSeeds:
    """Seed resolution for one spec: explicit values win, omissions derive."""

    __slots__ = ("_root",)

    def __init__(self, spec: "ScenarioSpec") -> None:
        self._root = spec.spec_hash()

    def derive(self, role: str) -> int:
        return _derived_seed(self._root, role)

    def value(self, mapping: Mapping, key: str, role: str):
        """``mapping[key]`` when present (and not ``None``), else derived."""
        explicit = mapping.get(key)
        return explicit if explicit is not None else self.derive(role)

    def fill_args(self, fn: Callable, args: Mapping, role: str) -> Dict:
        """Inject a derived ``seed`` into generator kwargs when the
        callable accepts one and the spec omitted it (or wrote ``null``)."""
        args = dict(args)
        if args.get("seed") is not None:
            return args
        if "seed" in inspect.signature(fn).parameters:
            args["seed"] = self.derive(f"{role}.seed")
        return args


def _resolve_arg(value, n_events: int):
    """Resolve one sequence-relative argument against the built length.

    ``{"events_div": k}`` resolves to ``n_events // k``,
    ``{"events_frac": [p, q]}`` to ``(n_events * p) // q``; an optional
    ``"min"`` clamps from below.  Everything else passes through.
    """
    if isinstance(value, Mapping) and ("events_div" in value or "events_frac" in value):
        if "events_div" in value:
            resolved = n_events // int(value["events_div"])
        else:
            p, q = value["events_frac"]
            resolved = (n_events * int(p)) // int(q)
        if "min" in value:
            resolved = max(int(value["min"]), resolved)
        return resolved
    return value


def _build_network(
    spec: Mapping, seeds: Optional[_SpecSeeds] = None
) -> HierarchicalBusNetwork:
    builder = NETWORK_BUILDERS.get(spec.get("builder"))
    if builder is None:
        raise SimulationError(f"unknown network builder {spec.get('builder')!r}")
    args = spec.get("args", {})
    if seeds is not None:
        args = seeds.fill_args(builder, args, "network.args")
    return builder(**args)


def _build_pattern(
    net: HierarchicalBusNetwork,
    spec: Mapping,
    seeds: Optional[_SpecSeeds] = None,
    role: str = "workload",
):
    generator = PATTERN_GENERATORS.get(spec.get("generator"))
    if generator is None:
        raise SimulationError(f"unknown pattern generator {spec.get('generator')!r}")
    args = spec.get("args", {})
    if seeds is not None:
        args = seeds.fill_args(generator, args, f"{role}.args")
    return generator(net, **args)


def _build_flash_crowd(
    net: HierarchicalBusNetwork, wl: Mapping, seeds: Optional[_SpecSeeds] = None
) -> Tuple[RequestSequence, ChurnTrace]:
    """The coupled flash-crowd workload: base trace + newcomer requests.

    A burst of ``n_new`` processors attaches ``1/cut_div`` of the way into
    the base sequence; the newcomers then issue their own (reference-id
    addressed) reads against the popular objects, shuffled into the tail.
    With ``recovery`` the crowd departs again later and its remaining
    requests are dropped by the replay.
    """
    base_pattern = _build_pattern(net, wl["base"], seeds, "workload.base")
    sequence_seed = wl.get("sequence_seed")
    if sequence_seed is None and seeds is not None:
        sequence_seed = seeds.derive("workload.sequence_seed")
    base_seq = sequence_from_pattern(net, base_pattern, seed=sequence_seed)
    n_objects = base_pattern.n_objects
    n_new = int(wl.get("n_new", 8))
    requests = int(wl.get("crowd_requests", 8))
    cut = len(base_seq) // int(wl.get("cut_div", 3))
    # relative recovery times resolve against the *final* replay length
    # (base trace + injected crowd requests), the same universe every other
    # sequence-relative argument uses
    final_len = len(base_seq) + n_new * requests
    trace_seed = wl.get("trace_seed")
    if trace_seed is None and seeds is not None:
        trace_seed = seeds.derive("workload.trace_seed")
    recovery = wl.get("recovery")
    if recovery is None:
        trace = flash_crowd_attach(
            net, n_new_leaves=n_new, time=cut, seed=trace_seed
        )
    else:
        trace = flash_crowd_recovery(
            net,
            n_new_leaves=n_new,
            attach_time=cut,
            detach_start=_resolve_arg(recovery["detach_start"], final_len),
            detach_spacing=_resolve_arg(recovery.get("detach_spacing", 1), final_len),
            seed=trace_seed,
        )
    crowd_seed = wl.get("crowd_seed")
    if crowd_seed is None and seeds is not None:
        crowd_seed = seeds.derive("workload.crowd_seed")
    gen = np.random.default_rng(crowd_seed)
    probs = zipf_weights(n_objects)
    base_n = net.n_nodes
    crowd_events = [
        RequestEvent(base_n + k, int(obj), READ)
        for k in range(n_new)
        for obj in gen.choice(n_objects, size=requests, p=probs)
    ]
    tail = list(base_seq.events[cut:]) + crowd_events
    shuffled_tail = [tail[i] for i in gen.permutation(len(tail))]
    sequence = RequestSequence(
        list(base_seq.events[:cut]) + shuffled_tail, n_objects
    )
    return sequence, trace


def _build_workload(
    net: HierarchicalBusNetwork, wl: Mapping, seeds: Optional[_SpecSeeds] = None
) -> Tuple[RequestSequence, Optional[ChurnTrace]]:
    kind = wl.get("kind", "pattern")
    sequence_seed = wl.get("sequence_seed")
    if sequence_seed is None and seeds is not None:
        sequence_seed = seeds.derive("workload.sequence_seed")
    if kind == "pattern":
        pattern = _build_pattern(net, wl, seeds, "workload")
        return sequence_from_pattern(net, pattern, seed=sequence_seed), None
    if kind == "phases":
        patterns = [
            _build_pattern(net, phase, seeds, f"workload.phases[{i}]")
            for i, phase in enumerate(wl["phases"])
        ]
        return phase_change_sequence(net, patterns, seed=sequence_seed), None
    if kind == "flash-crowd":
        return _build_flash_crowd(net, wl, seeds)
    raise SimulationError(f"unknown workload kind {kind!r}")


def _build_churn(
    net: HierarchicalBusNetwork,
    entries: Sequence[Mapping],
    n_events: int,
    seeds: Optional[_SpecSeeds] = None,
) -> Optional[ChurnTrace]:
    trace: Optional[ChurnTrace] = None
    for index, entry in enumerate(entries):
        generator = CHURN_GENERATORS.get(entry.get("generator"))
        if generator is None:
            raise SimulationError(
                f"unknown churn generator {entry.get('generator')!r}"
            )
        args = entry.get("args", {})
        if seeds is not None:
            args = seeds.fill_args(generator, args, f"churn[{index}].args")
        kwargs = {
            key: _resolve_arg(value, n_events) for key, value in args.items()
        }
        part = generator(net, **kwargs)
        trace = part if trace is None else trace.concatenated_with(part)
    return trace


def _build_strategies(
    net: HierarchicalBusNetwork,
    sequence: RequestSequence,
    specs: Sequence[Mapping],
) -> List[Tuple[str, Callable[[], object]]]:
    """Strategy factories for one built scenario.

    The canonical constructions live in :mod:`repro.dynamic.evaluate`
    (:func:`~repro.dynamic.evaluate.hindsight_static_manager` /
    :func:`~repro.dynamic.evaluate.first_touch_manager`); every factory is
    lazy, so merely *building* a scenario (the suite functions do that to
    hand out networks and sequences) never pays for a placement solve.
    """
    from repro.dynamic.evaluate import first_touch_manager, hindsight_static_manager

    def make_factory(kind: str, args: Mapping) -> Callable[[], object]:
        if kind == "hindsight-static":
            def factory():
                return hindsight_static_manager(net, sequence)
        elif kind == "edge-counter":
            def factory():
                return EdgeCounterManager(net, sequence.n_objects, **args)
        elif kind == "hysteresis":
            def factory():
                return HysteresisCounterManager(net, sequence.n_objects, **args)
        elif kind == "rent-or-buy":
            def factory():
                return RentOrBuyManager(net, sequence.n_objects, **args)
        elif kind == "first-touch":
            def factory():
                return first_touch_manager(
                    net,
                    sequence,
                    **{k: v for k, v in args.items() if k != "object_size"},
                )
        else:
            raise SimulationError(f"unknown strategy kind {kind!r}")
        return factory

    return [
        (
            spec.get("label", spec.get("kind")),
            make_factory(spec.get("kind"), dict(spec.get("args", {}))),
        )
        for spec in specs
    ]


def _build_sink(spec: Mapping, n_events: int) -> MetricsSink:
    kind = spec.get("kind")
    args = spec.get("args", {})
    if kind == "trajectory":
        samples = int(args.get("samples", 4))
        return TrajectorySink(max(1, n_events // max(1, samples)))
    if kind == "cost-breakdown":
        return CostBreakdownSink()
    if kind == "drops":
        return DropAccountingSink()
    raise SimulationError(f"unknown sink kind {kind!r}")


def _materialise_entry(
    spec: ScenarioSpec, entry: Optional[Mapping], index: int
) -> BuiltScenario:
    """Materialise one sweep entry (``None`` = the spec's base scenario)."""
    seeds = _SpecSeeds(spec)
    network_spec = dict(spec.network)
    label = spec.name
    if entry is not None:
        args = dict(network_spec.get("args", {}))
        args.update(entry.get("network_args", {}))
        network_spec["args"] = args
        label = f"{spec.name}/{entry.get('label', index)}"
    net = _build_network(network_spec, seeds)
    sequence, coupled_trace = _build_workload(net, spec.workload, seeds)
    churn_trace = _build_churn(net, spec.churn, len(sequence), seeds)
    if coupled_trace is not None and churn_trace is not None:
        trace = coupled_trace.concatenated_with(churn_trace)
    else:
        trace = coupled_trace if coupled_trace is not None else churn_trace
    return BuiltScenario(
        name=spec.name,
        label=label,
        network=net,
        sequence=sequence,
        trace=trace,
        strategies=_build_strategies(net, sequence, spec.strategies),
        sink_specs=spec.sinks,
    )


def build_scenario(spec: ScenarioSpec) -> List[BuiltScenario]:
    """Materialise a spec into one built scenario per sweep entry."""
    entries: Sequence[Optional[Mapping]] = spec.sweep or (None,)
    return [
        _materialise_entry(spec, entry, index)
        for index, entry in enumerate(entries)
    ]


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def _strategy_record(
    built: BuiltScenario, sname: str, result
) -> Dict[str, object]:
    """The plain-dict result record of one (sub-scenario, strategy) run."""
    record: Dict[str, object] = {
        "scenario": built.name,
        "label": built.label,
        "strategy": sname,
        "n_events": result.n_events,
        "served": result.served,
        "dropped": result.dropped,
        "n_mutations": result.n_mutations,
        "congestion": float(result.congestion),
        "total_load": float(result.account.total_load),
        "n_processors_final": result.network.n_processors,
        "repair_consistent": bool(result.account.state.verify_bus_loads()),
    }
    trajectory = result.sink(TrajectorySink)
    if trajectory is not None:
        record["trajectory"] = [float(x) for x in trajectory.trajectory]
    drops = result.sink(DropAccountingSink)
    if drops is not None:
        # the sink's per-span view: how many replay segments lost
        # requests (the engine totals must agree with it)
        record["drop_spans"] = len(drops.span_drops)
        if (drops.served, drops.dropped) != (result.served, result.dropped):
            raise SimulationError(
                "drop-accounting sink disagrees with the engine totals"
            )
    breakdown = result.sink(CostBreakdownSink)
    if breakdown is not None:
        record.update(
            {
                "service_load": breakdown.breakdown["service_load"],
                "management_load": breakdown.breakdown["management_load"],
            }
        )
    return record


def _run_entry(
    built: BuiltScenario, fleet: bool, strategy_index: Optional[int] = None
) -> List[Dict[str, object]]:
    """Replay one built sub-scenario (all strategies, or one by index)."""
    from repro.sim.engine import SimulationEngine

    strategies = built.strategies
    if strategy_index is not None:
        strategies = [strategies[strategy_index]]
    if fleet and len(strategies) > 1:
        instances = [factory() for _, factory in strategies]
        sink_sets = [built.make_sinks() for _ in strategies]
        results = SimulationEngine.run_fleet(
            instances, built.sequence, built.trace, sinks=sink_sets
        )
        return [
            _strategy_record(built, sname, result)
            for (sname, _), result in zip(strategies, results)
        ]
    records = []
    for sname, factory in strategies:
        engine = SimulationEngine(factory(), sinks=built.make_sinks())
        result = engine.run(built.sequence, built.trace)
        records.append(_strategy_record(built, sname, result))
    return records


# Per-worker substrate cache: one materialised sub-scenario per
# (spec JSON, sweep entry), reused across the strategy jobs the pool
# hands this worker.  Bounded to keep long-lived workers small.
_WORKER_BUILT: Dict[Tuple[str, int], BuiltScenario] = {}
_WORKER_BUILT_MAX = 8


def _worker_run_job(
    spec_json: str, entry_index: int, strategy_index: Optional[int], fleet: bool
) -> List[Dict[str, object]]:
    """One sweep job, executed in a worker process.

    The worker materialises the sub-scenario's substrate (network,
    sequence, churn trace) once per ``(spec, entry)`` and keeps it cached,
    so fanning the strategy jobs of one network size to one worker pays
    the build exactly once per worker.
    """
    key = (spec_json, entry_index)
    built = _WORKER_BUILT.get(key)
    if built is None:
        spec = ScenarioSpec.from_json(spec_json)
        entries: Sequence[Optional[Mapping]] = spec.sweep or (None,)
        built = _materialise_entry(spec, entries[entry_index], entry_index)
        if len(_WORKER_BUILT) >= _WORKER_BUILT_MAX:
            _WORKER_BUILT.pop(next(iter(_WORKER_BUILT)))
        _WORKER_BUILT[key] = built
    return _run_entry(built, fleet, strategy_index)


def run_scenario(
    spec: ScenarioSpec, fleet: bool = False, parallel: int = 1
) -> List[Dict[str, object]]:
    """Replay every strategy of every sub-scenario through the kernel.

    Returns one plain-dict record per (sub-scenario, strategy) pair: the
    served/dropped split, mutation count, final congestion and total load,
    the sampled congestion trajectory, the cost breakdown and the
    substrate self-check (incremental bus loads equal a from-scratch
    recomputation after all repairs).

    Parameters
    ----------
    fleet:
        Replay each sub-scenario's strategies through the stacked fleet
        engine (:meth:`~repro.sim.engine.SimulationEngine.run_fleet`): the
        timeline is decoded once and all strategies share one substrate.
        Records are bit-for-bit identical to the sequential default.
    parallel:
        Fan the sweep jobs out over a persistent process pool
        (:func:`repro.parallel.persistent_pool`).  Without ``fleet`` each
        (sweep entry, strategy) pair is one job and workers cache the
        entry's substrate, so one worker builds each network size once;
        with ``fleet`` each sweep entry is one job.  Records (and
        therefore artifacts) are byte-identical for any value.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    if parallel == 1:
        return [
            record
            for built in build_scenario(spec)
            for record in _run_entry(built, fleet)
        ]

    from repro.parallel import run_jobs

    spec_json = spec.to_json()
    entries: Sequence[Optional[Mapping]] = spec.sweep or (None,)
    if fleet:
        jobs = [(index, None) for index in range(len(entries))]
    else:
        jobs = [
            (index, strategy_index)
            for index in range(len(entries))
            for strategy_index in range(len(spec.strategies))
        ]
    results = run_jobs(
        min(parallel, len(jobs)),
        _worker_run_job,
        [(spec_json, index, strategy_index, fleet) for index, strategy_index in jobs],
    )
    return [record for records in results for record in records]


# --------------------------------------------------------------------------- #
# the family registry (named scenarios parameterised by seed and size)
# --------------------------------------------------------------------------- #
SCENARIO_FAMILIES: Dict[str, Callable[..., ScenarioSpec]] = {}


def register_scenario(name: str, factory: Callable[..., ScenarioSpec]) -> None:
    """Register a named spec factory ``(seed, small, large) -> ScenarioSpec``."""
    if name in SCENARIO_FAMILIES:
        raise SimulationError(f"scenario {name!r} is already registered")
    SCENARIO_FAMILIES[name] = factory


def list_scenarios() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIO_FAMILIES)


def scenario_spec(
    name: str, seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    """Build the spec of a registered scenario for one (seed, size)."""
    factory = SCENARIO_FAMILIES.get(name)
    if factory is None:
        raise KeyError(f"unknown scenario {name!r}")
    return factory(seed=seed, small=small, large=large)


def _streaming_sizes(small: bool, large: bool):
    """(network args, n_objects, requests, phases) of the E9 suite."""
    if large:
        return {"arity": 3, "depth": 4, "leaves_per_bus": 3}, 128, 24, 4
    if small:
        return {"arity": 2, "depth": 2, "leaves_per_bus": 2}, 8, 6, 2
    return {"arity": 2, "depth": 3, "leaves_per_bus": 2}, 32, 12, 3


def _churn_sizes(small: bool, large: bool):
    """(network args, n_objects, requests, n_churn) of the E10 suite."""
    if large:
        return {"arity": 3, "depth": 4, "leaves_per_bus": 3}, 96, 16, 16
    if small:
        return {"arity": 2, "depth": 2, "leaves_per_bus": 2}, 8, 6, 3
    return {"arity": 2, "depth": 3, "leaves_per_bus": 2}, 32, 10, 6


def _spec_zipf(seed: int = 0, small: bool = False, large: bool = False) -> ScenarioSpec:
    net_args, n_objects, requests, _ = _streaming_sizes(small, large)
    return ScenarioSpec(
        name="zipf",
        description="stationary skewed popularity (replication pays off)",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "zipf",
            "args": {
                "n_objects": n_objects,
                "requests_per_processor": requests,
                "seed": seed,
            },
            "sequence_seed": seed + 1,
        },
    )


def _spec_adversarial(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, _ = _streaming_sizes(small, large)
    return ScenarioSpec(
        name="adversarial",
        description="write-heavy cross-bisection traffic (replication never helps)",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "bisection-stress",
            "args": {
                "n_objects": n_objects,
                "requests_per_pair": 2 * requests,
                "seed": seed,
            },
            "sequence_seed": seed + 2,
        },
    )


def _spec_phase_shift(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, phases = _streaming_sizes(small, large)
    return ScenarioSpec(
        name="phase-shift",
        description="producer/consumer channels whose endpoints change per phase",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "phases",
            "phases": [
                {
                    "generator": "producer-consumer",
                    "args": {
                        "n_channels": n_objects,
                        "items_per_channel": requests,
                        "seed": seed + 10 * (k + 1),
                    },
                }
                for k in range(phases)
            ],
            "sequence_seed": seed + 3,
        },
    )


def _spec_flash_crowd(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="flash-crowd",
        description="a burst of newcomers joins mid-trace and issues reads",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "flash-crowd",
            "base": {
                "generator": "zipf",
                "args": {
                    "n_objects": n_objects,
                    "requests_per_processor": requests,
                    "seed": seed,
                },
            },
            "sequence_seed": seed + 1,
            "cut_div": 3,
            "n_new": n_churn,
            "trace_seed": seed + 2,
            "crowd_seed": seed + 3,
            "crowd_requests": requests,
        },
    )


def _spec_maintenance(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="maintenance",
        description="rolling maintenance detaches during a subtree-local trace",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "subtree-local",
            "args": {
                "n_objects": n_objects,
                "requests_per_processor": requests,
                "seed": seed,
            },
            "sequence_seed": seed + 4,
        },
        churn=(
            {
                "generator": "rolling-maintenance-detach",
                "args": {
                    "n_detach": n_churn,
                    "start": {"events_div": 4},
                    "spacing": {"events_div": 2 * n_churn, "min": 1},
                    "seed": seed + 5,
                },
            },
        ),
    )


def _spec_degradation(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, _requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="degradation",
        description="trunk/bus bandwidth decay under a hotspot trace",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "hotspot",
            "args": {"n_objects": n_objects, "seed": seed},
            "sequence_seed": seed + 6,
        },
        churn=(
            {
                "generator": "bandwidth-degradation",
                "args": {
                    "n_steps": n_churn,
                    "start": {"events_div": 4},
                    "spacing": {"events_div": 2 * n_churn, "min": 1},
                    "seed": seed + 7,
                },
            },
        ),
    )


def _spec_storm(seed: int = 0, small: bool = False, large: bool = False) -> ScenarioSpec:
    net_args, n_objects, requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="storm",
        description="a seeded mix of every mutation kind through a Zipf trace",
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "zipf",
            "args": {
                "n_objects": n_objects,
                "requests_per_processor": requests,
                "seed": seed,
            },
            "sequence_seed": seed + 8,
        },
        churn=(
            {
                "generator": "mutation-storm",
                "args": {
                    "n_mutations": 2 * n_churn,
                    "start": {"events_div": 5},
                    "spacing": {"events_div": 4 * n_churn, "min": 1},
                    "seed": seed + 9,
                },
            },
        ),
    )


def _spec_adversarial_storm(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="adversarial-storm",
        description=(
            "mutation storm under write-heavy bisection traffic: churn and "
            "adversarial workload stress the substrate repair together"
        ),
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "pattern",
            "generator": "bisection-stress",
            "args": {
                "n_objects": n_objects,
                "requests_per_pair": 2 * requests,
                "seed": seed,
            },
            "sequence_seed": seed + 1,
        },
        churn=(
            {
                "generator": "mutation-storm",
                "args": {
                    "n_mutations": 2 * n_churn,
                    "start": {"events_div": 6},
                    "spacing": {"events_div": 4 * n_churn, "min": 1},
                    "seed": seed + 2,
                },
            },
        ),
    )


def _spec_flash_crowd_recovery(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    net_args, n_objects, requests, n_churn = _churn_sizes(small, large)
    return ScenarioSpec(
        name="flash-crowd-recovery",
        description=(
            "multi-phase flash crowd: newcomers arrive a third of the way "
            "in, then depart again over the last quarter (their remaining "
            "requests drop)"
        ),
        network={"builder": "balanced-tree", "args": net_args},
        workload={
            "kind": "flash-crowd",
            "base": {
                "generator": "zipf",
                "args": {
                    "n_objects": n_objects,
                    "requests_per_processor": requests,
                    "seed": seed,
                },
            },
            "sequence_seed": seed + 1,
            "cut_div": 3,
            "n_new": n_churn,
            "trace_seed": seed + 2,
            "crowd_seed": seed + 3,
            "crowd_requests": requests,
            "recovery": {
                "detach_start": {"events_frac": [3, 4], "min": 1},
                "detach_spacing": {"events_div": 8 * n_churn, "min": 1},
            },
        },
    )


def _spec_fleet_sweep(
    seed: int = 0, small: bool = False, large: bool = False
) -> ScenarioSpec:
    _net_args, n_objects, requests, _ = _streaming_sizes(small, large)
    if large:
        sweep = (
            {"label": "s", "network_args": {"arity": 2, "depth": 3, "leaves_per_bus": 2}},
            {"label": "m", "network_args": {"arity": 3, "depth": 3, "leaves_per_bus": 2}},
            {"label": "l", "network_args": {"arity": 3, "depth": 4, "leaves_per_bus": 3}},
        )
    elif small:
        sweep = (
            {"label": "s", "network_args": {"arity": 2, "depth": 2, "leaves_per_bus": 2}},
            {"label": "m", "network_args": {"arity": 2, "depth": 3, "leaves_per_bus": 2}},
        )
    else:
        sweep = (
            {"label": "s", "network_args": {"arity": 2, "depth": 2, "leaves_per_bus": 2}},
            {"label": "m", "network_args": {"arity": 2, "depth": 3, "leaves_per_bus": 2}},
            {"label": "l", "network_args": {"arity": 3, "depth": 3, "leaves_per_bus": 2}},
        )
    return ScenarioSpec(
        name="fleet-sweep",
        description=(
            "one Zipf workload swept over a fleet of network sizes: how the "
            "online/static gap scales with the hierarchy"
        ),
        network={"builder": "balanced-tree", "args": {"arity": 2, "depth": 2}},
        workload={
            "kind": "pattern",
            "generator": "zipf",
            "args": {
                "n_objects": n_objects,
                "requests_per_processor": requests,
                "seed": seed,
            },
            "sequence_seed": seed + 1,
        },
        sinks=(
            {"kind": "trajectory", "args": {"samples": 4}},
            {"kind": "cost-breakdown"},
        ),
        sweep=sweep,
    )


for _name, _factory in (
    ("zipf", _spec_zipf),
    ("adversarial", _spec_adversarial),
    ("phase-shift", _spec_phase_shift),
    ("flash-crowd", _spec_flash_crowd),
    ("maintenance", _spec_maintenance),
    ("degradation", _spec_degradation),
    ("storm", _spec_storm),
    ("adversarial-storm", _spec_adversarial_storm),
    ("flash-crowd-recovery", _spec_flash_crowd_recovery),
    ("fleet-sweep", _spec_fleet_sweep),
):
    register_scenario(_name, _factory)
