"""Pluggable metrics sinks for the simulation kernel.

The engine owns *when* things happen (spans, mutations, rounds); sinks own
*what is measured*.  A sink subscribes to the hooks it cares about; every
hook receives the driving engine (or round driver), so sinks read metrics
straight off the shared load-state substrate instead of keeping private
bookkeeping -- the same "one substrate" rule the strategies follow.

**Fleet replay.**  Under
:meth:`~repro.sim.engine.SimulationEngine.run_fleet` each strategy keeps
its own sink set, and every hook receives that strategy's per-lane engine
view -- ``sim.account`` reads the strategy's lane of the stacked
substrate, so sinks work unchanged and record exactly what they would in
a sequential run.  One caveat: serve spans break at the *union* of all
lanes' ``interval`` hints, so per-span observations (e.g. the
span-granular drop list) match the sequential run exactly when every
lane uses the same sink configuration -- the scenario registry's shape;
totals and sampled values match in any case.

Built-in sinks:

* :class:`TrajectorySink` -- congestion sampled every ``sample_every``
  processed events (plus a forced final sample), the streaming read
  pattern of :func:`repro.dynamic.evaluate.congestion_trajectory` and
  :func:`repro.dynamic.churn.replay_with_churn`;
* :class:`DropAccountingSink` -- served/dropped split per span and in
  total (reference-id requests from departed processors);
* :class:`CostBreakdownSink` -- final service/management/total-load/
  congestion breakdown of the strategy's cost account;
* :class:`RoundStatsSink` -- per-round cumulative congestion and delivery
  counts for the store-and-forward round replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "MetricsSink",
    "TrajectorySink",
    "DropAccountingSink",
    "CostBreakdownSink",
    "RoundStatsSink",
]


class MetricsSink:
    """Base sink: every hook is a no-op; subclasses override what they need.

    ``interval`` (when not ``None``) asks the engine to break serve spans
    at multiples of that many events, so the sink gets an
    :meth:`on_boundary` call exactly at its sample positions even while
    the engine stays on the vectorized chunk fast path in between.
    """

    interval: Optional[int] = None

    def on_begin(self, sim) -> None:
        """Called once before the first timeline item."""

    def on_span(self, sim, start: int, stop: int, served: int, dropped: int) -> None:
        """Called after each serve span (original event positions)."""

    def on_boundary(self, sim, position: int) -> None:
        """Called after serving up to ``position`` events (ascending)."""

    def on_mutation(self, sim, outcome) -> None:
        """Called after a mutation was applied and the strategy repaired."""

    def on_round(self, sim, index: int, n_delivered: int) -> None:
        """Called after each delivery round (round replay only)."""

    def on_end(self, sim) -> None:
        """Called once after the final timeline item."""


class TrajectorySink(MetricsSink):
    """Sample the congestion every ``sample_every`` processed events.

    Matches the legacy sampling rule exactly: a sample lands after event
    ``i`` whenever ``(i + 1) % sample_every == 0`` or ``i + 1`` is the
    sequence length (the forced final sample).  Dropped events advance the
    position like served ones, as in the churn replay.
    """

    def __init__(self, sample_every: int) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be a positive integer")
        self.sample_every = int(sample_every)
        self._samples: List[float] = []
        self._times: List[int] = []

    @property
    def interval(self) -> int:  # type: ignore[override]
        return self.sample_every

    def on_boundary(self, sim, position: int) -> None:
        if position < 1:
            return
        if position % self.sample_every == 0 or position == sim.n_events:
            if self._times and self._times[-1] == position:
                return
            self._samples.append(sim.account.congestion)
            self._times.append(position)

    @property
    def trajectory(self) -> np.ndarray:
        """Sampled congestion values in order."""
        return np.asarray(self._samples, dtype=np.float64)

    @property
    def sample_times(self) -> np.ndarray:
        """Event positions (1-based) at which the samples were taken."""
        return np.asarray(self._times, dtype=np.int64)


class DropAccountingSink(MetricsSink):
    """Track the served/dropped split of reference-id addressed requests."""

    def __init__(self) -> None:
        self.served = 0
        self.dropped = 0
        self.span_drops: List[int] = []

    def on_span(self, sim, start: int, stop: int, served: int, dropped: int) -> None:
        self.served += served
        self.dropped += dropped
        if dropped:
            self.span_drops.append(dropped)


class CostBreakdownSink(MetricsSink):
    """Capture the final cost breakdown of the strategy's account."""

    def __init__(self) -> None:
        self.breakdown: Dict[str, float] = {}

    def on_end(self, sim) -> None:
        account = sim.account
        self.breakdown = {
            "congestion": float(account.congestion),
            "total_load": float(account.total_load),
            "service_load": float(account.service_units),
            "management_load": float(account.management_units),
        }


class RoundStatsSink(MetricsSink):
    """Per-round cumulative congestion and delivery counts (round replay)."""

    def __init__(self) -> None:
        self._congestion: List[float] = []
        self._delivered: List[int] = []

    def on_round(self, sim, index: int, n_delivered: int) -> None:
        self._congestion.append(sim.state.congestion)
        self._delivered.append(int(n_delivered))

    @property
    def round_congestion(self) -> np.ndarray:
        """Cumulative congestion of the traffic delivered up to each round."""
        return np.asarray(self._congestion, dtype=np.float64)

    @property
    def delivered_per_round(self) -> np.ndarray:
        """Number of traversals delivered in each round."""
        return np.asarray(self._delivered, dtype=np.int64)

    @property
    def n_rounds(self) -> int:
        """Number of delivery rounds observed."""
        return len(self._congestion)
