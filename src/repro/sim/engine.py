"""The simulation engine: one loop behind every replay entry point.

:class:`SimulationEngine` drives a :class:`~repro.sim.protocol.PlacementStrategy`
through the merged timeline of a request sequence and an optional churn
trace.  Between mutation points it stays on the vectorized chunk fast path
(:meth:`serve_chunk`, one path-incidence scatter for non-adapting
strategies); at mutation points it applies the mutation functionally,
repairs the strategy in place and keeps the reference-id mapping of the
churn model up to date (requests from departed or not-yet-arrived
processors are counted as dropped).  Metrics flow through the pluggable
sinks of :mod:`repro.sim.sinks`.

:class:`RoundReplayDriver` is the round-mode counterpart used by the
store-and-forward request replay: it charges per-round delivery batches
into a :class:`~repro.core.loadstate.LoadState` and notifies the same sink
set once per round.

Both produce **bit-for-bit** the results of the legacy loops they
replaced; ``tests/properties/test_sim_kernel.py`` pins that against
verbatim copies of the pre-refactor implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import WorkloadError
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    MutationOutcome,
    apply_mutation,
)
from repro.sim.protocol import validate_strategy
from repro.sim.sinks import MetricsSink
from repro.sim.timeline import MutationPoint, ServeSpan, merge_timeline

__all__ = ["SimulationEngine", "SimulationResult", "RoundReplayDriver"]


@dataclass
class SimulationResult:
    """Outcome of one engine run: strategy, substrate and sink handles."""

    strategy: object
    account: object
    network: object
    n_events: int
    served: int
    dropped: int
    outcomes: List[MutationOutcome] = field(default_factory=list)
    sinks: Tuple[MetricsSink, ...] = ()

    @property
    def congestion(self) -> float:
        """Final congestion of the replayed account."""
        return self.account.congestion

    @property
    def n_mutations(self) -> int:
        """Number of mutations applied during the replay."""
        return len(self.outcomes)

    def sink(self, kind: Type[MetricsSink]) -> Optional[MetricsSink]:
        """First attached sink of the given type (``None`` if absent)."""
        for sink in self.sinks:
            if isinstance(sink, kind):
                return sink
        return None


class SimulationEngine:
    """Drive one strategy through one request/churn timeline.

    Parameters
    ----------
    strategy:
        Any object implementing the
        :class:`~repro.sim.protocol.PlacementStrategy` protocol.
    sinks:
        Metrics sinks; their ``interval`` hints become serve-span
        boundaries so samples land at exact event positions while the
        replay between them stays batched.
    chunk_size:
        Optional upper bound on serve-span length (the batch replay
        grid).  ``None`` serves each uninterrupted span as one chunk.
    """

    def __init__(
        self,
        strategy,
        sinks: Sequence[MetricsSink] = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        validate_strategy(strategy)
        if chunk_size is not None and chunk_size < 1:
            raise WorkloadError("chunk_size must be a positive integer")
        self.strategy = strategy
        self.sinks: Tuple[MetricsSink, ...] = tuple(sinks)
        self.chunk_size = chunk_size
        self.n_events = 0
        self.served = 0
        self.dropped = 0
        self.outcomes: List[MutationOutcome] = []

    @property
    def account(self):
        """The strategy's cost account (live view)."""
        return self.strategy.account

    # ------------------------------------------------------------------ #
    def run(
        self, sequence: RequestSequence, trace: Optional[ChurnTrace] = None
    ) -> SimulationResult:
        """Replay ``sequence`` (interleaved with ``trace``) to completion.

        Without a trace every event is served directly; with one, events
        address processors by reference ids (original ids plus one fresh
        id per attach in trace order), requests from departed or
        not-yet-arrived processors are dropped, and every mutation
        scheduled at time ``t`` is applied before the event at position
        ``t``.
        """
        strategy = self.strategy
        n_objects = getattr(strategy, "n_objects", None)
        if n_objects is not None and sequence.n_objects > n_objects:
            raise WorkloadError(
                "sequence references more objects than the strategy was built for"
            )
        self.n_events = len(sequence)
        self.served = 0
        self.dropped = 0
        self.outcomes = []

        boundaries = set()
        for sink in self.sinks:
            interval = sink.interval
            if interval:
                boundaries.update(range(interval, self.n_events, interval))
        items = merge_timeline(self.n_events, trace, self.chunk_size, boundaries)

        track_refs = trace is not None
        current_of_ref = None
        n_refs = 0
        next_attach_ref = 0
        if track_refs:
            base_n = strategy.network.n_nodes
            n_refs = base_n + trace.attach_count()
            current_of_ref = np.full(n_refs, -1, dtype=np.int64)
            current_of_ref[:base_n] = np.arange(base_n, dtype=np.int64)
            next_attach_ref = base_n

        for sink in self.sinks:
            sink.on_begin(self)
        for item in items:
            if isinstance(item, MutationPoint):
                outcome = apply_mutation(strategy.network, item.mutation)
                strategy.apply_mutation(outcome)
                self.outcomes.append(outcome)
                if track_refs:
                    alive = current_of_ref >= 0
                    current_of_ref[alive] = outcome.node_map[current_of_ref[alive]]
                    if isinstance(item.mutation, AttachLeaf):
                        current_of_ref[next_attach_ref] = int(outcome.new_node)
                        next_attach_ref += 1
                for sink in self.sinks:
                    sink.on_mutation(self, outcome)
            else:  # ServeSpan
                start, stop = item.start, item.stop
                if not track_refs:
                    strategy.serve_chunk(sequence, start, stop)
                    served, dropped = stop - start, 0
                else:
                    served, dropped = self._serve_remapped(
                        sequence, start, stop, current_of_ref, n_refs
                    )
                self.served += served
                self.dropped += dropped
                for sink in self.sinks:
                    sink.on_span(self, start, stop, served, dropped)
                    sink.on_boundary(self, stop)
        for sink in self.sinks:
            sink.on_end(self)

        return SimulationResult(
            strategy=strategy,
            account=strategy.account,
            network=strategy.network,
            n_events=self.n_events,
            served=self.served,
            dropped=self.dropped,
            outcomes=self.outcomes,
            sinks=self.sinks,
        )

    def _serve_remapped(
        self,
        sequence: RequestSequence,
        start: int,
        stop: int,
        current_of_ref: np.ndarray,
        n_refs: int,
    ) -> Tuple[int, int]:
        """Serve one span under the reference-id mapping.

        The mapping is constant within a span (mutations only happen at
        span boundaries), so the kept events form one chunk: when every
        reference maps to itself the original sequence slice is served
        directly (keeping its cached columnar view), otherwise a remapped
        sub-sequence goes through the same chunk fast path.
        """
        kept: List[RequestEvent] = []
        identity = True
        for event in sequence.events[start:stop]:
            if not 0 <= event.processor < n_refs:
                raise WorkloadError(
                    f"event references processor id {event.processor}, but the "
                    f"replay universe has {n_refs} reference ids"
                )
            proc = int(current_of_ref[event.processor])
            if proc < 0:
                identity = False
                continue
            if proc == event.processor:
                kept.append(event)
            else:
                identity = False
                kept.append(RequestEvent(proc, event.obj, event.kind))
        if identity:
            self.strategy.serve_chunk(sequence, start, stop)
        elif kept:
            sub = RequestSequence(kept, sequence.n_objects)
            self.strategy.serve_chunk(sub, 0, len(kept))
        return len(kept), (stop - start) - len(kept)


class RoundReplayDriver:
    """Round-mode kernel: charge delivery rounds into a load state.

    Used by the store-and-forward request replay: the scheduler decides
    *which* traversals complete each round, the driver owns the substrate
    charging and the per-round sink notifications (cumulative congestion,
    delivery counts).
    """

    def __init__(self, state, sinks: Sequence[MetricsSink] = ()) -> None:
        self.state = state
        self.sinks: Tuple[MetricsSink, ...] = tuple(sinks)
        self.n_rounds = 0

    def run(self, rounds) -> int:
        """Apply every round batch in order; returns the round count."""
        for sink in self.sinks:
            sink.on_begin(self)
        for edge_ids in rounds:
            ids = np.asarray(edge_ids, dtype=np.int64)
            self.state.apply_edges(ids)
            index = self.n_rounds
            self.n_rounds += 1
            for sink in self.sinks:
                sink.on_round(self, index, ids.size)
        for sink in self.sinks:
            sink.on_end(self)
        return self.n_rounds
