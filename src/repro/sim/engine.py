"""The simulation engine: one loop behind every replay entry point.

:class:`SimulationEngine` drives a :class:`~repro.sim.protocol.PlacementStrategy`
through the merged timeline of a request sequence and an optional churn
trace.  Between mutation points it stays on the vectorized chunk fast path
(:meth:`serve_chunk`, one path-incidence scatter for non-adapting
strategies); at mutation points it applies the mutation functionally,
repairs the strategy in place and keeps the reference-id mapping of the
churn model up to date (requests from departed or not-yet-arrived
processors are counted as dropped).  Metrics flow through the pluggable
sinks of :mod:`repro.sim.sinks`.

:class:`RoundReplayDriver` is the round-mode counterpart used by the
store-and-forward request replay: it charges per-round delivery batches
into a :class:`~repro.core.loadstate.LoadState` and notifies the same sink
set once per round.

Both produce **bit-for-bit** the results of the legacy loops they
replaced; ``tests/properties/test_sim_kernel.py`` pins that against
verbatim copies of the pre-refactor implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import SimulationError, WorkloadError
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    MutationOutcome,
    apply_mutation,
)
from repro.sim.protocol import fleet_groups, validate_strategy
from repro.sim.sinks import MetricsSink
from repro.sim.timeline import MutationPoint, ServeSpan, merge_timeline

__all__ = [
    "SimulationEngine",
    "EngineStream",
    "SimulationResult",
    "RoundReplayDriver",
]


def _remap_span(
    sequence: RequestSequence,
    start: int,
    stop: int,
    current_of_ref: np.ndarray,
    n_refs: int,
) -> Tuple[Optional[RequestSequence], int, int, int, int]:
    """Resolve one serve span under the reference-id mapping.

    The mapping is constant within a span (mutations only happen at span
    boundaries), so the kept events form one chunk.  Returns
    ``(sub, sub_start, sub_stop, served, dropped)``: when every reference
    maps to itself the original sequence slice is returned directly
    (keeping its cached columnar view), otherwise a remapped sub-sequence
    covering exactly the kept events; ``sub`` is ``None`` when every event
    of the span dropped.
    """
    kept: List[RequestEvent] = []
    identity = True
    for event in sequence.events[start:stop]:
        if not 0 <= event.processor < n_refs:
            raise WorkloadError(
                f"event references processor id {event.processor}, but the "
                f"replay universe has {n_refs} reference ids"
            )
        proc = int(current_of_ref[event.processor])
        if proc < 0:
            identity = False
            continue
        if proc == event.processor:
            kept.append(event)
        else:
            identity = False
            kept.append(RequestEvent(proc, event.obj, event.kind))
    if identity:
        return sequence, start, stop, stop - start, 0
    if kept:
        sub = RequestSequence(kept, sequence.n_objects)
        return sub, 0, len(kept), len(kept), (stop - start) - len(kept)
    return None, 0, 0, 0, stop - start


class _ReferenceTracker:
    """Reference-id -> current-node mapping of a churn replay.

    Events address processors by *reference id*: original node ids plus
    one fresh id per attach in trace order.  Departed (or not-yet-arrived)
    references map to ``-1`` and their requests drop.  One implementation
    serves both :meth:`SimulationEngine.run` and
    :meth:`SimulationEngine.run_fleet`, so the two paths cannot drift in
    churn reference semantics (invariant 7 depends on that).
    """

    __slots__ = ("current_of_ref", "n_refs", "_next_attach")

    def __init__(self, base_n: int, trace: ChurnTrace) -> None:
        self.n_refs = base_n + trace.attach_count()
        self.current_of_ref = np.full(self.n_refs, -1, dtype=np.int64)
        self.current_of_ref[:base_n] = np.arange(base_n, dtype=np.int64)
        self._next_attach = base_n

    def apply_outcome(self, mutation, outcome: MutationOutcome) -> None:
        """Renumber live references through one applied mutation."""
        alive = self.current_of_ref >= 0
        self.current_of_ref[alive] = outcome.node_map[self.current_of_ref[alive]]
        if isinstance(mutation, AttachLeaf):
            self.current_of_ref[self._next_attach] = int(outcome.new_node)
            self._next_attach += 1


def _sink_boundaries(sink_sets, n_events: int) -> set:
    """Span-break positions requested by the sinks' ``interval`` hints."""
    boundaries = set()
    for sinks in sink_sets:
        for sink in sinks:
            interval = sink.interval
            if interval:
                boundaries.update(range(interval, n_events, interval))
    return boundaries


@dataclass
class SimulationResult:
    """Outcome of one engine run: strategy, substrate and sink handles."""

    strategy: object
    account: object
    network: object
    n_events: int
    served: int
    dropped: int
    outcomes: List[MutationOutcome] = field(default_factory=list)
    sinks: Tuple[MetricsSink, ...] = ()

    @property
    def congestion(self) -> float:
        """Final congestion of the replayed account."""
        return self.account.congestion

    @property
    def n_mutations(self) -> int:
        """Number of mutations applied during the replay."""
        return len(self.outcomes)

    def sink(self, kind: Type[MetricsSink]) -> Optional[MetricsSink]:
        """First attached sink of the given type (``None`` if absent)."""
        for sink in self.sinks:
            if isinstance(sink, kind):
                return sink
        return None


class SimulationEngine:
    """Drive one strategy through one request/churn timeline.

    Parameters
    ----------
    strategy:
        Any object implementing the
        :class:`~repro.sim.protocol.PlacementStrategy` protocol.
    sinks:
        Metrics sinks; their ``interval`` hints become serve-span
        boundaries so samples land at exact event positions while the
        replay between them stays batched.
    chunk_size:
        Optional upper bound on serve-span length (the batch replay
        grid).  ``None`` serves each uninterrupted span as one chunk.
    """

    def __init__(
        self,
        strategy,
        sinks: Sequence[MetricsSink] = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        validate_strategy(strategy)
        if chunk_size is not None and chunk_size < 1:
            raise WorkloadError("chunk_size must be a positive integer")
        self.strategy = strategy
        self.sinks: Tuple[MetricsSink, ...] = tuple(sinks)
        self.chunk_size = chunk_size
        self.n_events = 0
        self.served = 0
        self.dropped = 0
        self.outcomes: List[MutationOutcome] = []

    @property
    def account(self):
        """The strategy's cost account (live view)."""
        return self.strategy.account

    # ------------------------------------------------------------------ #
    def run(
        self, sequence: RequestSequence, trace: Optional[ChurnTrace] = None
    ) -> SimulationResult:
        """Replay ``sequence`` (interleaved with ``trace``) to completion.

        Without a trace every event is served directly; with one, events
        address processors by reference ids (original ids plus one fresh
        id per attach in trace order), requests from departed or
        not-yet-arrived processors are dropped, and every mutation
        scheduled at time ``t`` is applied before the event at position
        ``t``.
        """
        strategy = self.strategy
        n_objects = getattr(strategy, "n_objects", None)
        if n_objects is not None and sequence.n_objects > n_objects:
            raise WorkloadError(
                "sequence references more objects than the strategy was built for"
            )
        self.n_events = len(sequence)
        self.served = 0
        self.dropped = 0
        self.outcomes = []

        boundaries = _sink_boundaries([self.sinks], self.n_events)
        items = merge_timeline(self.n_events, trace, self.chunk_size, boundaries)

        tracker = None
        if trace is not None:
            tracker = _ReferenceTracker(strategy.network.n_nodes, trace)

        for sink in self.sinks:
            sink.on_begin(self)
        for item in items:
            if isinstance(item, MutationPoint):
                outcome = apply_mutation(strategy.network, item.mutation)
                strategy.apply_mutation(outcome)
                self.outcomes.append(outcome)
                if tracker is not None:
                    tracker.apply_outcome(item.mutation, outcome)
                for sink in self.sinks:
                    sink.on_mutation(self, outcome)
            else:  # ServeSpan
                start, stop = item.start, item.stop
                if tracker is None:
                    strategy.serve_chunk(sequence, start, stop)
                    served, dropped = stop - start, 0
                else:
                    served, dropped = self._serve_remapped(
                        sequence, start, stop,
                        tracker.current_of_ref, tracker.n_refs,
                    )
                self.served += served
                self.dropped += dropped
                for sink in self.sinks:
                    sink.on_span(self, start, stop, served, dropped)
                    sink.on_boundary(self, stop)
        for sink in self.sinks:
            sink.on_end(self)

        return SimulationResult(
            strategy=strategy,
            account=strategy.account,
            network=strategy.network,
            n_events=self.n_events,
            served=self.served,
            dropped=self.dropped,
            outcomes=self.outcomes,
            sinks=self.sinks,
        )

    def _serve_remapped(
        self,
        sequence: RequestSequence,
        start: int,
        stop: int,
        current_of_ref: np.ndarray,
        n_refs: int,
    ) -> Tuple[int, int]:
        """Serve one span under the reference-id mapping (see
        :func:`_remap_span`; the kept chunk goes through the same chunk
        fast path)."""
        sub, sub_start, sub_stop, served, dropped = _remap_span(
            sequence, start, stop, current_of_ref, n_refs
        )
        if sub is not None and sub_stop > sub_start:
            self.strategy.serve_chunk(sub, sub_start, sub_stop)
        return served, dropped

    # ------------------------------------------------------------------ #
    # fleet replay: all strategies in one stacked pass over the timeline
    # ------------------------------------------------------------------ #
    @classmethod
    def run_fleet(
        cls,
        strategies: Sequence[object],
        sequence: RequestSequence,
        trace: Optional[ChurnTrace] = None,
        sinks: Optional[Sequence[Sequence[MetricsSink]]] = None,
        chunk_size: Optional[int] = None,
    ) -> List[SimulationResult]:
        """Replay one timeline under every strategy at once, stacked.

        The comparative experiment shape of the paper -- the same
        request/churn timeline under a whole strategy family -- pays K
        full passes when run strategy by strategy.  ``run_fleet`` decodes
        the timeline **once**, rebinds every strategy's (fresh) cost
        account onto one lane of a shared
        :class:`~repro.core.loadstate.StackedLoadState`, and serves each
        span for all K strategies against the stacked substrate:

        * strategies whose class implements the ``serve_chunk_fleet``
          group hook (see :func:`~repro.sim.protocol.fleet_groups`) share
          per-chunk work across their lanes: static lanes share the chunk
          aggregation, batched LCA/distance pass and one lane-broadcast
          edge scatter; adaptive counter lanes
          (:class:`~repro.dynamic.online.EdgeCounterManager` and its
          tournament subclasses) share the chunk decode, the per-object
          position index and one bulk nearest-table build, each lane
          replaying its own counter cascade exactly;
        * every other strategy is served through its own ``serve_chunk``
          against its lane, so custom strategies remain exact;
        * churn mutations are applied once, the stacked substrate is
          repaired once for all lanes, and the reference-id remapping of
          each span is resolved once.

        Per-lane metrics flow through per-strategy sink sets (``sinks[k]``
        observes lane ``k`` through its own engine view).  Serve spans
        break at the union of all lanes' sink intervals; with equal sink
        configurations per lane -- the scenario-registry shape -- that is
        exactly the sequential span structure.

        The results are **bit-for-bit** those of K sequential
        :meth:`run` calls over fresh strategies (loads, congestion,
        trajectories, drops, cost breakdowns); all charges are integer
        request counts, so lane arithmetic is exact in any order.
        ``tests/properties/test_fleet_parity.py`` pins this.

        Parameters
        ----------
        strategies:
            Distinct, freshly-built strategies sharing one network object
            and unused cost accounts (their states are rebound to fleet
            lanes, which do not support snapshots).
        sequence / trace / chunk_size:
            As in :meth:`run`.
        sinks:
            Optional per-strategy sink sets (``len(sinks) == K``).

        Returns
        -------
        list of SimulationResult, in strategy order.
        """
        from repro.core.loadstate import LoadState, StackedLoadState

        strategies = list(strategies)
        if not strategies:
            raise SimulationError("run_fleet needs at least one strategy")
        if len(set(map(id, strategies))) != len(strategies):
            raise SimulationError("fleet strategies must be distinct instances")
        if sinks is None:
            sinks = [()] * len(strategies)
        sinks = [tuple(lane_sinks) for lane_sinks in sinks]
        if len(sinks) != len(strategies):
            raise SimulationError("run_fleet needs one sink set per strategy")

        base_net = strategies[0].network
        for strategy in strategies:
            validate_strategy(strategy)
            if strategy.network is not base_net:
                raise SimulationError(
                    "fleet strategies must share one network object (build "
                    "them against the same HierarchicalBusNetwork instance)"
                )
            n_objects = getattr(strategy, "n_objects", None)
            if n_objects is not None and sequence.n_objects > n_objects:
                raise WorkloadError(
                    "sequence references more objects than the strategy was "
                    "built for"
                )

        # validate freshness over the whole fleet BEFORE rebinding any
        # account: a rejected fleet must leave every strategy untouched
        for strategy in strategies:
            account = strategy.account
            state = getattr(account, "state", None)
            fresh = (
                isinstance(state, LoadState)
                and not np.any(state._loads)
                and not account.service_units
                and not account.management_units
            )
            if not fresh:
                raise SimulationError(
                    "fleet strategies must be freshly built: their cost "
                    "accounts are rebound onto lanes of one stacked substrate"
                )
        stacked = StackedLoadState(base_net, len(strategies))
        for k, strategy in enumerate(strategies):
            strategy.account.state = stacked.lane(k)

        engines = [
            cls(strategy, sinks=sinks[k], chunk_size=chunk_size)
            for k, strategy in enumerate(strategies)
        ]
        n_events = len(sequence)
        for engine in engines:
            engine.n_events = n_events
            engine.served = 0
            engine.dropped = 0
            engine.outcomes = []

        boundaries = _sink_boundaries(
            [engine.sinks for engine in engines], n_events
        )
        items = merge_timeline(n_events, trace, chunk_size, boundaries)

        tracker = None
        if trace is not None:
            tracker = _ReferenceTracker(base_net.n_nodes, trace)

        groups = fleet_groups(strategies)

        for engine in engines:
            for sink in engine.sinks:
                sink.on_begin(engine)
        for item in items:
            if isinstance(item, MutationPoint):
                outcome = apply_mutation(strategies[0].network, item.mutation)
                for k, strategy in enumerate(strategies):
                    # the lane repair is idempotent per outcome, so the
                    # stacked substrate is repaired exactly once
                    strategy.apply_mutation(outcome)
                    engines[k].outcomes.append(outcome)
                if tracker is not None:
                    tracker.apply_outcome(item.mutation, outcome)
                for engine in engines:
                    for sink in engine.sinks:
                        sink.on_mutation(engine, outcome)
            else:  # ServeSpan
                start, stop = item.start, item.stop
                if tracker is None:
                    sub, sub_start, sub_stop = sequence, start, stop
                    served, dropped = stop - start, 0
                else:
                    sub, sub_start, sub_stop, served, dropped = _remap_span(
                        sequence, start, stop,
                        tracker.current_of_ref, tracker.n_refs,
                    )
                if sub is not None and sub_stop > sub_start:
                    for group_cls, members in groups:
                        if group_cls is None:
                            members[0].serve_chunk(sub, sub_start, sub_stop)
                        else:
                            group_cls.serve_chunk_fleet(
                                members, sub, sub_start, sub_stop
                            )
                for engine in engines:
                    engine.served += served
                    engine.dropped += dropped
                    for sink in engine.sinks:
                        sink.on_span(engine, start, stop, served, dropped)
                        sink.on_boundary(engine, stop)
        for engine in engines:
            for sink in engine.sinks:
                sink.on_end(engine)

        return [
            SimulationResult(
                strategy=engine.strategy,
                account=engine.strategy.account,
                network=engine.strategy.network,
                n_events=engine.n_events,
                served=engine.served,
                dropped=engine.dropped,
                outcomes=engine.outcomes,
                sinks=engine.sinks,
            )
            for engine in engines
        ]


class EngineStream:
    """Incremental, span-feeding counterpart of :meth:`SimulationEngine.run`.

    The offline engine walks a *complete* timeline; a serving front end
    only ever sees a prefix.  ``EngineStream`` accepts request micro-batches
    (:meth:`serve`) and churn mutations (:meth:`mutate`) in arrival order
    and keeps the strategy, its cost account and the attached sinks in
    exactly the state the offline engine would reach after replaying the
    same prefix.  :meth:`finish` seals the stream and returns the same
    :class:`SimulationResult` shape as :meth:`SimulationEngine.run`.

    **Parity contract (ARCHITECTURE invariant 10).**  For any completed
    stream, the final loads, cost units, congestion, served/dropped totals,
    mutation outcomes and sampled trajectories are **bit-for-bit** equal to
    an offline :meth:`SimulationEngine.run` over the recorded sequence and
    churn trace.  This holds for *any* micro-batch partition of the event
    stream because ``serve_chunk`` is contractually equal to event-by-event
    serving, and because the stream re-cuts every batch at the offline span
    grid (sink ``interval`` hints and ``chunk_size`` multiples), so samples
    land at identical event positions.  Only span-*granular* observations
    (e.g. the per-span drop list) depend on the partition.

    Differences from the offline run, by necessity of streaming:

    * ``n_events`` is ``-1`` while the stream is open (the total is
      unknown); sinks comparing positions against it must tolerate that.
      :meth:`finish` sets the final count and emits one closing
      ``on_boundary`` at it, which built-in sinks deduplicate.
    * The reference universe grows with the stream: events may only
      address reference ids that already exist (original nodes plus
      attaches applied *so far*).  An id that the offline engine would
      resolve against a later attach (and drop) is rejected here with
      :class:`~repro.errors.WorkloadError` -- failing loud beats silently
      guessing the future.  Batches are validated before any event is
      served, so a rejected batch leaves the account untouched.
    """

    def __init__(
        self,
        strategy,
        sinks: Sequence[MetricsSink] = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        validate_strategy(strategy)
        if chunk_size is not None and chunk_size < 1:
            raise WorkloadError("chunk_size must be a positive integer")
        self.strategy = strategy
        self.sinks: Tuple[MetricsSink, ...] = tuple(sinks)
        self.chunk_size = chunk_size
        self.position = 0
        self.n_events = -1  # unknown until finish()
        self.served = 0
        self.dropped = 0
        self.outcomes: List[MutationOutcome] = []
        self._base_n = strategy.network.n_nodes
        # identity until the first mutation; then the growable
        # reference-id -> current-node mapping (one fresh id per attach)
        self._current_of_ref: Optional[np.ndarray] = None
        self._pending_mutations: List[object] = []
        self._intervals = sorted(
            {sink.interval for sink in self.sinks if sink.interval}
        )
        self._finished = False
        for sink in self.sinks:
            sink.on_begin(self)

    @property
    def account(self):
        """The strategy's cost account (live view)."""
        return self.strategy.account

    @property
    def n_refs(self) -> int:
        """Size of the current reference-id universe."""
        if self._current_of_ref is None:
            return self._base_n
        return len(self._current_of_ref)

    def _check_open(self) -> None:
        if self._finished:
            raise SimulationError("stream is finished; no further feeding")

    def _as_batch(self, events) -> RequestSequence:
        """Events -> one validated micro-batch sequence."""
        if isinstance(events, RequestSequence):
            batch = events
        else:
            events = list(events)
            n_objects = getattr(self.strategy, "n_objects", None)
            if n_objects is None:
                n_objects = 1 + max((ev.obj for ev in events), default=-1)
            batch = RequestSequence(events, n_objects)
        n_objects = getattr(self.strategy, "n_objects", None)
        if n_objects is not None and batch.n_objects > n_objects:
            raise WorkloadError(
                "sequence references more objects than the strategy was built for"
            )
        if len(batch):
            procs = batch.as_arrays()[0]
            lo, hi = int(procs.min()), int(procs.max())
            if lo < 0 or hi >= self.n_refs:
                bad = lo if lo < 0 else hi
                raise WorkloadError(
                    f"event references processor id {bad}, but the replay "
                    f"universe has {self.n_refs} reference ids"
                )
            # a stream is untrusted input: an in-range ref whose current
            # node is a bus would index out of bounds inside the serving
            # kernels, so reject it here (departed refs are fine -- the
            # remap drops their events)
            network = self.strategy.network
            uniq = np.unique(procs)
            current = (
                uniq if self._current_of_ref is None
                else self._current_of_ref[uniq]
            )
            for ref, node in zip(uniq, current):
                if node >= 0 and not network.is_processor(int(node)):
                    raise WorkloadError(
                        f"event references id {int(ref)}, which is a bus "
                        "node, not a processor"
                    )
        return batch

    def _cuts(self, start: int, stop: int) -> List[int]:
        """Offline span-grid positions falling strictly inside (start, stop)."""
        cuts = set()
        grids = list(self._intervals)
        if self.chunk_size is not None:
            grids.append(self.chunk_size)
        for grid in grids:
            first = (start // grid + 1) * grid
            cuts.update(range(first, stop, grid))
        return sorted(cuts)

    def serve(self, events) -> Tuple[int, int]:
        """Serve one micro-batch now; returns its ``(served, dropped)`` split.

        ``events`` is an iterable of
        :class:`~repro.dynamic.sequence.RequestEvent` (or a prebuilt
        :class:`~repro.dynamic.sequence.RequestSequence`).  The batch is
        validated atomically, re-cut at the offline span grid, and each
        sub-span goes through the same chunk fast path as the offline
        engine.  Events from departed reference ids are dropped (counted,
        not served), exactly as offline.
        """
        self._check_open()
        self._flush_mutations()
        batch = self._as_batch(events)
        n = len(batch)
        if n == 0:
            return 0, 0
        start = self.position
        stop = start + n
        strategy = self.strategy
        batch_served = batch_dropped = 0
        edges = [start, *self._cuts(start, stop), stop]
        for a, b in zip(edges, edges[1:]):
            la, lb = a - start, b - start
            if self._current_of_ref is None:
                strategy.serve_chunk(batch, la, lb)
                served, dropped = b - a, 0
            else:
                sub, sub_start, sub_stop, served, dropped = _remap_span(
                    batch, la, lb, self._current_of_ref, self.n_refs
                )
                if sub is not None and sub_stop > sub_start:
                    strategy.serve_chunk(sub, sub_start, sub_stop)
            self.position = b
            self.served += served
            self.dropped += dropped
            batch_served += served
            batch_dropped += dropped
            for sink in self.sinks:
                sink.on_span(self, a, b, served, dropped)
                sink.on_boundary(self, b)
        return batch_served, batch_dropped

    def mutate(self, mutation) -> None:
        """Schedule one churn mutation at the current stream position.

        Mutations apply *lazily*: the queue is flushed immediately before
        the next served event (or, for trailing mutations, after the
        closing boundary of :meth:`finish`).  This is exactly the offline
        timeline contract -- a mutation at time ``t`` lands before the
        event at position ``t``, and mutations at or past the final
        position land after the final serve span, so the forced final
        trajectory sample precedes them.
        """
        self._check_open()
        self._pending_mutations.append(mutation)

    def _flush_mutations(self) -> None:
        """Apply every queued mutation, in arrival order."""
        pending, self._pending_mutations = self._pending_mutations, []
        for mutation in pending:
            outcome = apply_mutation(self.strategy.network, mutation)
            self.strategy.apply_mutation(outcome)
            self.outcomes.append(outcome)
            if self._current_of_ref is None:
                self._current_of_ref = np.arange(self._base_n, dtype=np.int64)
            alive = self._current_of_ref >= 0
            self._current_of_ref[alive] = outcome.node_map[
                self._current_of_ref[alive]
            ]
            if isinstance(mutation, AttachLeaf):
                self._current_of_ref = np.append(
                    self._current_of_ref, np.int64(outcome.new_node)
                )
            for sink in self.sinks:
                sink.on_mutation(self, outcome)

    def finish(self) -> SimulationResult:
        """Seal the stream and return the offline-shaped result."""
        self._check_open()
        self._finished = True
        self.n_events = self.position
        for sink in self.sinks:
            sink.on_boundary(self, self.position)
        self._flush_mutations()
        for sink in self.sinks:
            sink.on_end(self)
        return SimulationResult(
            strategy=self.strategy,
            account=self.strategy.account,
            network=self.strategy.network,
            n_events=self.n_events,
            served=self.served,
            dropped=self.dropped,
            outcomes=self.outcomes,
            sinks=self.sinks,
        )


class RoundReplayDriver:
    """Round-mode kernel: charge delivery rounds into a load state.

    Used by the store-and-forward request replay: the scheduler decides
    *which* traversals complete each round, the driver owns the substrate
    charging and the per-round sink notifications (cumulative congestion,
    delivery counts).
    """

    def __init__(self, state, sinks: Sequence[MetricsSink] = ()) -> None:
        self.state = state
        self.sinks: Tuple[MetricsSink, ...] = tuple(sinks)
        self.n_rounds = 0

    def run(self, rounds) -> int:
        """Apply every round batch in order; returns the round count."""
        for sink in self.sinks:
            sink.on_begin(self)
        for edge_ids in rounds:
            ids = np.asarray(edge_ids, dtype=np.int64)
            self.state.apply_edges(ids)
            index = self.n_rounds
            self.n_rounds += 1
            for sink in self.sinks:
                sink.on_round(self, index, ids.size)
        for sink in self.sinks:
            sink.on_end(self)
        return self.n_rounds
