"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library errors without accidentally swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "NotATreeError",
    "InvalidNodeError",
    "InvalidEdgeError",
    "BandwidthError",
    "MutationError",
    "WorkloadError",
    "PlacementError",
    "AssignmentError",
    "AlgorithmError",
    "CapacityError",
    "InfeasibleError",
    "SimulationError",
    "SerializationError",
    "LabError",
    "FaultError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class TopologyError(ReproError):
    """The network topology violates the hierarchical-bus-network model."""


class NotATreeError(TopologyError):
    """The supplied graph is not a tree (disconnected or contains a cycle)."""


class InvalidNodeError(TopologyError):
    """A node identifier does not exist or has the wrong kind."""


class InvalidEdgeError(TopologyError):
    """An edge does not exist in the network."""


class BandwidthError(TopologyError):
    """A bandwidth value is missing or not a positive number."""


class MutationError(TopologyError):
    """A topology mutation is invalid or was applied inconsistently.

    Raised when a mutation would break the hierarchical-bus-network model
    (e.g. detaching the last processor of a bus), when a churn trace is
    malformed, and when substrate state that cannot survive a mutation is
    used across one (e.g. rolling a :class:`repro.core.loadstate.LoadState`
    back to a snapshot taken before a topology mutation).
    """


class WorkloadError(ReproError):
    """An access pattern (read/write frequency matrix) is malformed."""


class PlacementError(ReproError):
    """A placement is malformed (empty holder set, holder on a bus, ...)."""


class AssignmentError(PlacementError):
    """A reference-copy assignment is inconsistent with the placement."""


class AlgorithmError(ReproError):
    """An algorithm reached a state that its analysis proves impossible.

    Raised, e.g., when the downwards phase of the mapping algorithm cannot
    find a free child edge -- Lemma 4.1 of the paper shows this cannot
    happen, so hitting this error indicates a bug or a malformed input.
    """


class CapacityError(ReproError):
    """A network exceeds the index capacity of the compiled substrate.

    The path/incidence substrate stores node ids, edge ids and lifting
    indices as int32 so that the CSR tables of 10^5-10^6-leaf networks fit
    in memory.  Constructing a substrate whose node count, edge count or
    total root-path entry count does not fit in int32 raises this error
    explicitly -- indices are never silently wrapped.
    """


class InfeasibleError(ReproError):
    """An exact solver determined that no feasible solution exists."""


class SimulationError(ReproError):
    """The distributed simulation engine was used inconsistently."""


class SerializationError(ReproError):
    """A serialized network or workload could not be decoded."""


class LabError(ReproError):
    """The experiment-lab run registry was used inconsistently.

    Raised when a registry index or artifact is malformed, when an entry
    required by a report is missing from the registry, and when a
    ``run-missing`` job fails (a failed run is never registered, so a
    resumed sweep retries it).
    """


class FaultError(ReproError):
    """A fault-injection plan is malformed or was installed inconsistently."""


class InjectedFault(ReproError):
    """A deterministic fault fired at an instrumented fault point.

    Raised by the hooks of :mod:`repro.faults` to *simulate* a crash or a
    dropped connection.  It derives from :class:`ReproError` so generic
    library error handling stays safe, but robustness layers (the serving
    stack, the chaos tests) catch it explicitly to exercise their
    crash-recovery paths.  The message always carries the plan seed, the
    fault site and the hit index, so any chaos failure is replayable.
    """
