"""Load generator for the streaming placement service (``repro loadgen``).

Replays a scenario-registry workload (or any event/mutation list) against
a running server at a target events/sec and reports what the service
actually sustained: achieved throughput, per-event ack-latency
percentiles and the final served summary.

Two tasks per connection, mirroring the server's split:

* the *sender* paces request batches onto the socket against the target
  rate (a mutation scheduled at stream time ``t`` is sent before the
  event at position ``t``) and awaits ``drain`` -- server backpressure
  slows the sender down rather than ballooning client memory;
* the *receiver* consumes acks; an ack with id ``n`` covers every
  outstanding message with id <= ``n``, and each covered request
  message contributes its event count at ``ack_time - send_time`` to the
  latency distribution.

**Timeouts and reconnect.**  Every socket read is bounded by ``timeout``
(a silent server raises instead of hanging the client forever).  With
``retries > 0`` a lost connection is retried with seeded, jittered
exponential backoff; when the server journals sessions, the client
resumes its session by token -- the server replays the journal and
reports the durable watermark ``(position, n_mutations)``, the client
rewinds both cursors and re-sends only unacked items.  Acks cover only
journaled items (write-ahead order), so the recovered stream is
*exactly-once*: its summary is byte-identical to an uninterrupted run
(ARCHITECTURE invariant 11).  A structured ``overloaded``/``draining``
error is honoured by waiting its ``retry_after`` hint before the next
attempt.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.errors import InjectedFault, SimulationError
from repro.serve.wire import encode_events, encode_message, mutation_to_dict

__all__ = ["run_loadgen", "loadgen", "workload_from_spec"]


def workload_from_spec(spec) -> Tuple[Sequence, List[Tuple[int, Dict]]]:
    """The (events, timed mutation ops) stream of a scenario spec."""
    from repro.sim.scenario import build_scenario

    built = build_scenario(spec)[0]
    mutations: List[Tuple[int, Dict]] = []
    if built.trace is not None:
        mutations = [
            (int(tm.time), mutation_to_dict(tm.mutation))
            for tm in built.trace.events
        ]
    return built.sequence.events, mutations


class _Shed(Exception):
    """The server shed this connection (overloaded/draining): retriable."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


async def _connect(
    host: str, port: int, timeout: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open the connection, retrying while the server comes up."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.1)


async def run_loadgen(
    host: str,
    port: int,
    events: Sequence,
    mutations: Sequence[Tuple[int, Dict]] = (),
    rate: Optional[float] = None,
    batch: int = 64,
    repeat: int = 1,
    connect_timeout: float = 10.0,
    timeout: Optional[float] = 60.0,
    retries: int = 0,
    backoff_base: float = 0.05,
    backoff_max: float = 2.0,
    backoff_seed: int = 0,
) -> Dict[str, object]:
    """Drive one session and measure it; returns the stats document.

    Parameters
    ----------
    events / mutations:
        The stream: request events plus ``(time, op)`` churn ops (op =
        :func:`~repro.serve.wire.mutation_to_dict` encoding).  ``repeat``
        replays the event list that many times back to back (churn is
        sent during the first pass only -- detached processors stay
        detached, so drops keep accruing).
    rate:
        Target events/sec (``None`` = as fast as the server accepts).
    batch:
        Events per ``requests`` message.
    timeout:
        Per-read socket timeout in seconds (``None`` disables -- not
        recommended: a silent server then hangs the client forever).
    retries:
        How many times a lost connection/timeout is retried.  With a
        journaling server the session is *resumed* by token at the
        durable watermark; exactly-once either way.
    backoff_base / backoff_max / backoff_seed:
        Jittered exponential backoff between attempts:
        ``min(backoff_max, backoff_base * 2**k)`` scaled by a seeded
        uniform jitter in [0.5, 1.5).
    """
    if batch < 1:
        raise SimulationError("batch must be a positive integer")
    if repeat < 1:
        raise SimulationError("repeat must be a positive integer")
    events = list(events)
    mutations = sorted(mutations, key=lambda item: item[0])
    total = len(events) * repeat

    loop = asyncio.get_running_loop()
    latencies: List[float] = []
    weights: List[int] = []
    rng = random.Random(backoff_seed)
    progress: Dict[str, object] = {
        "session": None,  # the hello of the session being driven
        "token": None,
        "journal": False,
        "pos": 0,  # events durably acked/journaled (the resume cursor)
        "mi": 0,  # mutations likewise
        "acked": False,  # has *anything* ever been acked?
        "resumed": 0,
    }
    timing: Dict[str, Optional[float]] = {"first": None, "last": None}

    async def read_message(reader) -> Dict:
        if timeout is not None:
            line = await asyncio.wait_for(reader.readline(), timeout)
        else:
            line = await reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        fault = faults.fault_point("loadgen.recv")
        if fault is not None:
            faults.raise_fault(fault)
        return json.loads(line)

    async def handshake(reader, writer) -> Optional[Dict]:
        """Hello (+ resume on reconnect).  Returns a summary when the
        journal turned out to be sealed (only the final ack was lost)."""
        hello = await read_message(reader)
        if hello.get("type") == "error":
            code = hello.get("code")
            message = hello.get("message", "server error")
            if code in ("overloaded", "draining"):
                raise _Shed(message, hello.get("retry_after", 0.5))
            raise SimulationError(f"loadgen: server reported: {message}")
        if hello.get("type") != "session":
            raise SimulationError(
                f"loadgen: expected session hello, got {hello.get('type')!r}"
            )
        if progress["session"] is None:
            # first connection: adopt this fresh session
            progress["session"] = hello
            progress["token"] = hello.get("token")
            progress["journal"] = bool(hello.get("journal"))
            return None
        # reconnect: resume our session at the server's durable watermark
        if not progress["journal"] or not progress["token"]:
            raise SimulationError(
                "loadgen: connection lost and the server keeps no journal; "
                "cannot resume exactly-once"
            )
        writer.write(
            encode_message({"type": "resume", "token": progress["token"]})
        )
        await writer.drain()
        reply = await read_message(reader)
        rtype = reply.get("type")
        if rtype == "resumed":
            progress["pos"] = int(reply["position"])
            progress["mi"] = int(reply["n_mutations"])
            progress["resumed"] = int(progress["resumed"]) + 1
            return None
        if rtype == "end":
            # the stream had completed; the crash only ate the final ack
            timing["last"] = loop.time()
            return reply.get("summary")
        if (
            rtype == "error"
            and reply.get("code") == "unknown-token"
            and not progress["acked"]
        ):
            # nothing ever became durable server-side (crash before the
            # first journal write); starting over from zero is safe and
            # exactly-once.  The server hung up after the error, so
            # forget the session and reconnect fresh.
            progress["session"] = None
            progress["token"] = None
            progress["pos"] = 0
            progress["mi"] = 0
            raise ConnectionResetError(
                "session was never durable; restarting fresh"
            )
        raise SimulationError(
            f"loadgen: resume failed: {reply.get('message', reply)}"
        )

    async def attempt() -> Optional[Dict]:
        reader, writer = await _connect(host, port, connect_timeout)
        try:
            sealed_summary = await handshake(reader, writer)
            if sealed_summary is not None:
                return sealed_summary
            # message id -> (send time, events covered); acks cumulative
            outstanding: Dict[int, Tuple[float, int]] = {}
            result: Dict[str, Optional[Dict]] = {"summary": None}
            error: List[str] = []

            async def sender() -> None:
                msg_id = 0
                mi = int(progress["mi"])
                pos = pos0 = int(progress["pos"])
                t0 = loop.time()
                if timing["first"] is None:
                    timing["first"] = t0

                def send(message: Dict, n_events: int) -> None:
                    nonlocal msg_id
                    fault = faults.fault_point("loadgen.send")
                    if fault is not None:
                        faults.raise_fault(fault)
                    msg_id += 1
                    message["id"] = msg_id
                    outstanding[msg_id] = (loop.time(), n_events)
                    writer.write(encode_message(message))

                while pos < total:
                    base = pos % len(events)
                    while mi < len(mutations) and mutations[mi][0] <= pos:
                        send({"type": "mutation", "op": mutations[mi][1]}, 0)
                        await writer.drain()
                        mi += 1
                    # a batch never crosses a repeat boundary or a
                    # mutation time
                    stop = min(pos + batch, total, pos + (len(events) - base))
                    if mi < len(mutations):
                        stop = min(stop, mutations[mi][0])
                    if rate:
                        target = t0 + (pos - pos0) / rate
                        delay = target - loop.time()
                        if delay > 0:
                            await asyncio.sleep(delay)
                    chunk = events[base : base + (stop - pos)]
                    send(
                        {"type": "requests", "events": encode_events(chunk)},
                        len(chunk),
                    )
                    await writer.drain()
                    pos = stop
                while mi < len(mutations):  # trailing churn
                    send({"type": "mutation", "op": mutations[mi][1]}, 0)
                    mi += 1
                send({"type": "end"}, 0)
                await writer.drain()

            async def receiver() -> None:
                while True:
                    message = await read_message(reader)
                    mtype = message.get("type")
                    if mtype == "ack":
                        now = loop.time()
                        timing["last"] = now
                        progress["acked"] = True
                        covered = [
                            mid for mid in outstanding if mid <= message["id"]
                        ]
                        for mid in covered:
                            sent_at, n_events = outstanding.pop(mid)
                            if n_events:
                                latencies.append(now - sent_at)
                                weights.append(n_events)
                        # the ack position is the durable watermark: the
                        # journal covers it (write-ahead order), so a
                        # resume never replays past it
                        if "position" in message:
                            progress["pos"] = max(
                                int(progress["pos"]), int(message["position"])
                            )
                    elif mtype == "end":
                        timing["last"] = loop.time()
                        result["summary"] = message.get("summary")
                        return
                    elif mtype == "error":
                        error.append(message.get("message", "server error"))
                        return
                    elif mtype == "session":
                        pass  # late hello duplicate: ignore

            recv_task = asyncio.create_task(receiver())
            try:
                await sender()
                await recv_task
            finally:
                if not recv_task.done():
                    recv_task.cancel()
                try:
                    await recv_task
                except BaseException:
                    # the sender's failure is the primary error; the
                    # receiver's (usually the same broken connection)
                    # must still be retrieved or asyncio warns
                    pass
            if error:
                raise SimulationError(
                    f"loadgen: server reported: {error[0]}"
                )
            if result["summary"] is None:
                raise ConnectionResetError("stream ended without a summary")
            return result["summary"]
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, OSError):
                pass

    summary: Optional[Dict] = None
    reconnects = 0
    while True:
        try:
            summary = await attempt()
            break
        except _Shed as exc:
            reconnects += 1
            if reconnects > retries:
                raise SimulationError(f"loadgen: {exc}") from exc
            step = min(backoff_max, backoff_base * (2 ** (reconnects - 1)))
            await asyncio.sleep(max(step, exc.retry_after) * (0.5 + rng.random()))
        except (ConnectionError, OSError, asyncio.TimeoutError, InjectedFault) as exc:
            reconnects += 1
            if reconnects > retries:
                raise SimulationError(
                    f"loadgen: connection failed after {reconnects} "
                    f"attempt(s): {exc}"
                ) from exc
            step = min(backoff_max, backoff_base * (2 ** (reconnects - 1)))
            await asyncio.sleep(step * (0.5 + rng.random()))

    if summary is None:
        raise SimulationError("loadgen: stream ended without a summary")

    session = progress["session"]
    wall = max((timing["last"] or 0.0) - (timing["first"] or 0.0), 1e-9)
    lat = np.repeat(
        np.asarray(latencies, dtype=np.float64), np.asarray(weights, dtype=np.int64)
    )
    percentile = (
        (lambda q: float(np.percentile(lat, q) * 1000.0))
        if lat.size
        else (lambda q: 0.0)
    )
    return {
        "n_events": total,
        "n_mutations": len(mutations),
        "repeat": repeat,
        "batch": batch,
        "target_rate": rate,
        "wall_seconds": wall,
        "events_per_sec": total / wall,
        "reconnects": reconnects,
        "resumed": int(progress["resumed"]),
        "latency_ms": {
            "p50": percentile(50),
            "p90": percentile(90),
            "p99": percentile(99),
            "max": float(lat.max() * 1000.0) if lat.size else 0.0,
        },
        "session": {
            key: session.get(key)
            for key in ("scenario", "label", "strategy", "n_nodes", "n_objects")
        }
        if session
        else None,
        "summary": summary,
    }


def loadgen(host: str, port: int, events, mutations=(), **kwargs) -> Dict:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(host, port, events, mutations, **kwargs))
