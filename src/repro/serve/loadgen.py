"""Load generator for the streaming placement service (``repro loadgen``).

Replays a scenario-registry workload (or any event/mutation list) against
a running server at a target events/sec and reports what the service
actually sustained: achieved throughput, per-event ack-latency
percentiles and the final served summary.

Two tasks per connection, mirroring the server's split:

* the *sender* paces request batches onto the socket against the target
  rate (a mutation scheduled at stream time ``t`` is sent before the
  event at position ``t``) and awaits ``drain`` -- server backpressure
  slows the sender down rather than ballooning client memory;
* the *receiver* consumes acks; an ack with id ``n`` covers every
  outstanding message with id <= ``n``, and each covered request
  message contributes its event count at ``ack_time - send_time`` to the
  latency distribution.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.serve.wire import encode_events, encode_message, mutation_to_dict

__all__ = ["run_loadgen", "loadgen", "workload_from_spec"]


def workload_from_spec(spec) -> Tuple[Sequence, List[Tuple[int, Dict]]]:
    """The (events, timed mutation ops) stream of a scenario spec."""
    from repro.sim.scenario import build_scenario

    built = build_scenario(spec)[0]
    mutations: List[Tuple[int, Dict]] = []
    if built.trace is not None:
        mutations = [
            (int(tm.time), mutation_to_dict(tm.mutation))
            for tm in built.trace.events
        ]
    return built.sequence.events, mutations


async def _connect(
    host: str, port: int, timeout: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open the connection, retrying while the server comes up."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(0.1)


async def run_loadgen(
    host: str,
    port: int,
    events: Sequence,
    mutations: Sequence[Tuple[int, Dict]] = (),
    rate: Optional[float] = None,
    batch: int = 64,
    repeat: int = 1,
    connect_timeout: float = 10.0,
) -> Dict[str, object]:
    """Drive one session and measure it; returns the stats document.

    Parameters
    ----------
    events / mutations:
        The stream: request events plus ``(time, op)`` churn ops (op =
        :func:`~repro.serve.wire.mutation_to_dict` encoding).  ``repeat``
        replays the event list that many times back to back (churn is
        sent during the first pass only -- detached processors stay
        detached, so drops keep accruing).
    rate:
        Target events/sec (``None`` = as fast as the server accepts).
    batch:
        Events per ``requests`` message.
    """
    if batch < 1:
        raise SimulationError("batch must be a positive integer")
    if repeat < 1:
        raise SimulationError("repeat must be a positive integer")
    events = list(events)
    mutations = sorted(mutations, key=lambda item: item[0])
    total = len(events) * repeat

    reader, writer = await _connect(host, port, connect_timeout)
    loop = asyncio.get_running_loop()
    # message id -> (send time, events covered); acks are cumulative
    outstanding: Dict[int, Tuple[float, int]] = {}
    latencies: List[float] = []
    weights: List[int] = []
    summary: Optional[Dict] = None
    session: Optional[Dict] = None
    error: Optional[str] = None
    t_first = t_last = None

    async def sender() -> None:
        nonlocal t_first
        msg_id = 0
        mi = 0
        pos = 0
        t0 = loop.time()
        t_first = t0

        def send(message: Dict, n_events: int) -> None:
            nonlocal msg_id
            msg_id += 1
            message["id"] = msg_id
            outstanding[msg_id] = (loop.time(), n_events)
            writer.write(encode_message(message))

        while pos < total:
            base = pos % len(events)
            while mi < len(mutations) and mutations[mi][0] <= pos:
                send({"type": "mutation", "op": mutations[mi][1]}, 0)
                await writer.drain()
                mi += 1
            # a batch never crosses a repeat boundary or a mutation time
            stop = min(pos + batch, total, pos + (len(events) - base))
            if mi < len(mutations):
                stop = min(stop, mutations[mi][0])
            if rate:
                target = t0 + pos / rate
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            chunk = events[base : base + (stop - pos)]
            send({"type": "requests", "events": encode_events(chunk)}, len(chunk))
            await writer.drain()
            pos = stop
        while mi < len(mutations):  # trailing churn
            send({"type": "mutation", "op": mutations[mi][1]}, 0)
            mi += 1
        send({"type": "end"}, 0)
        await writer.drain()

    async def receiver() -> None:
        nonlocal summary, session, error, t_last
        while True:
            line = await reader.readline()
            if not line:
                if summary is None and error is None:
                    error = "connection closed before end"
                return
            message = json.loads(line)
            mtype = message.get("type")
            if mtype == "session":
                session = message
            elif mtype == "ack":
                now = loop.time()
                t_last = now
                covered = [mid for mid in outstanding if mid <= message["id"]]
                for mid in covered:
                    sent_at, n_events = outstanding.pop(mid)
                    if n_events:
                        latencies.append(now - sent_at)
                        weights.append(n_events)
            elif mtype == "end":
                t_last = loop.time()
                summary = message.get("summary")
                return
            elif mtype == "error":
                error = message.get("message", "server error")
                return

    try:
        recv_task = asyncio.create_task(receiver())
        await sender()
        await recv_task
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
    if error is not None:
        raise SimulationError(f"loadgen: server reported: {error}")
    if summary is None:
        raise SimulationError("loadgen: stream ended without a summary")

    wall = max((t_last or 0.0) - (t_first or 0.0), 1e-9)
    lat = np.repeat(
        np.asarray(latencies, dtype=np.float64), np.asarray(weights, dtype=np.int64)
    )
    percentile = (
        (lambda q: float(np.percentile(lat, q) * 1000.0))
        if lat.size
        else (lambda q: 0.0)
    )
    return {
        "n_events": total,
        "n_mutations": len(mutations),
        "repeat": repeat,
        "batch": batch,
        "target_rate": rate,
        "wall_seconds": wall,
        "events_per_sec": total / wall,
        "latency_ms": {
            "p50": percentile(50),
            "p90": percentile(90),
            "p99": percentile(99),
            "max": float(lat.max() * 1000.0) if lat.size else 0.0,
        },
        "session": {
            key: session.get(key)
            for key in ("scenario", "label", "strategy", "n_nodes", "n_objects")
        }
        if session
        else None,
        "summary": summary,
    }


def loadgen(host: str, port: int, events, mutations=(), **kwargs) -> Dict:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(host, port, events, mutations, **kwargs))
