"""Serve sessions and the micro-batcher feeding the engine stream.

:class:`ServeSession` is the synchronous core of one served stream: it
owns a fresh strategy, its sink set and an
:class:`~repro.sim.engine.EngineStream`, records every ingested item
through an optional :class:`~repro.serve.recorder.StreamRecorder`, and
produces the canonical result record on :meth:`ServeSession.finish`.
The asyncio server drives it one micro-batch at a time; tests drive it
directly.

:class:`MicroBatcher` coalesces decoded stream messages into engine
micro-batches: consecutive request batches accumulate until the
configured batch size, and every mutation / flush / end message is a
barrier that drains the buffer first (the ordering contract of the
recorder -- a mutation's time is the number of requests ingested before
it).  Because the engine stream re-cuts every batch at the offline span
grid, the coalescing is invisible in the results (invariant 10); it only
sets the amortisation granularity of the chunk fast path.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence

from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import SimulationError
from repro.serve.wire import decode_events, mutation_from_dict
from repro.sim.engine import EngineStream, SimulationResult
from repro.sim.sinks import CostBreakdownSink, MetricsSink, TrajectorySink

__all__ = [
    "ServeSession",
    "MicroBatcher",
    "build_session",
    "resume_session",
    "result_record",
]


def result_record(result: SimulationResult) -> Dict[str, object]:
    """The canonical, JSON-stable record of one completed stream.

    This is the object the differential harness compares bit-for-bit
    between the served stream and its offline replay, so it contains
    exactly the batch-partition-*invariant* outputs: totals, final cost
    breakdown, the sampled trajectory (+ sample positions) and a SHA-256
    of the final load vector.  Span-granular observations (e.g. the
    per-span drop list) depend on how the stream was batched and are
    deliberately absent.
    """
    account = result.account
    record: Dict[str, object] = {
        "n_events": int(result.n_events),
        "served": int(result.served),
        "dropped": int(result.dropped),
        "n_mutations": int(result.n_mutations),
        "congestion": float(result.congestion),
        "total_load": float(account.total_load),
        "service_load": float(account.service_units),
        "management_load": float(account.management_units),
        "n_nodes_final": int(result.network.n_nodes),
        "n_processors_final": int(result.network.n_processors),
    }
    state = getattr(account, "state", None)
    loads = getattr(state, "_loads", None)
    if loads is not None:
        record["loads_sha256"] = hashlib.sha256(loads.tobytes()).hexdigest()
    trajectory = result.sink(TrajectorySink)
    if trajectory is not None:
        record["trajectory"] = [float(x) for x in trajectory.trajectory]
        record["sample_times"] = [int(t) for t in trajectory.sample_times]
    breakdown = result.sink(CostBreakdownSink)
    if breakdown is not None:
        record["breakdown"] = {
            key: float(value) for key, value in sorted(breakdown.breakdown.items())
        }
    return record


class ServeSession:
    """One served stream: strategy + engine stream + recorder.

    Parameters
    ----------
    strategy:
        A freshly built placement strategy (it accumulates the stream's
        loads; reuse across sessions would leak state).
    n_objects:
        The session's object universe; every batch sequence is built over
        it, so batch validation and the offline replay agree exactly.
    sinks / chunk_size:
        As in :class:`~repro.sim.engine.EngineStream`.
    recorder:
        Optional :class:`~repro.serve.recorder.StreamRecorder`; every
        ingested batch and mutation is persisted in arrival order.
    meta:
        Session identity echoed to clients (scenario, strategy label...).
    """

    def __init__(
        self,
        strategy,
        n_objects: int,
        sinks: Sequence[MetricsSink] = (),
        chunk_size: Optional[int] = None,
        recorder=None,
        meta: Optional[Mapping] = None,
    ) -> None:
        self.strategy = strategy
        self.n_objects = int(n_objects)
        self.stream = EngineStream(strategy, sinks=sinks, chunk_size=chunk_size)
        self.recorder = recorder
        self.meta = dict(meta or {})
        self.summary: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    @property
    def position(self) -> int:
        """Number of request events ingested so far."""
        return self.stream.position

    def session_info(self) -> Dict[str, object]:
        """The ``session`` handshake payload."""
        info = {
            "n_nodes": int(self.strategy.network.n_nodes),
            "n_objects": self.n_objects,
            "chunk_size": self.stream.chunk_size,
        }
        info.update(self.meta)
        return info

    def feed(self, events: Sequence[RequestEvent]) -> Dict[str, object]:
        """Serve one micro-batch now; returns the live ack payload."""
        batch = RequestSequence(events, self.n_objects)
        if self.recorder is not None:
            self.recorder.record_events(batch.events)
        served, dropped = self.stream.serve(batch)
        account = self.stream.account
        return {
            "position": self.stream.position,
            "served": served,
            "dropped": dropped,
            "congestion": float(account.congestion),
            "total_load": float(account.total_load),
        }

    def mutate(self, op: Mapping) -> Dict[str, object]:
        """Schedule one churn mutation at the current position."""
        mutation = mutation_from_dict(op)
        if self.recorder is not None:
            self.recorder.record_mutation(op, time=self.stream.position)
        self.stream.mutate(mutation)
        return {"position": self.stream.position, "scheduled": True}

    def finish(self) -> Dict[str, object]:
        """Seal the stream; returns (and persists) the canonical record."""
        result = self.stream.finish()
        self.summary = result_record(result)
        if self.recorder is not None:
            self.recorder.close(self.summary)
        return self.summary

    def abort(self, reason: str) -> None:
        """Mark a stream that died mid-flight (recording stays partial)."""
        if self.recorder is not None:
            self.recorder.abort(reason)

    def crash(self) -> None:
        """Simulate abrupt death: the journal keeps no footer at all.

        Used by the fault plane so an injected crash leaves exactly the
        on-disk state a killed process would -- the state
        :func:`resume_session` must recover from.
        """
        if self.recorder is not None:
            self.recorder.crash()


class MicroBatcher:
    """Coalesce decoded messages into engine micro-batches.

    ``add(message)`` buffers request events and returns the list of reply
    payloads produced by whatever the message forced to happen; mutation,
    flush and end messages are barriers that drain the buffer first.  The
    caller (the server's engine task) decides *when* to call
    :meth:`drain` for opportunistic batching -- typically when its inbound
    queue runs empty.
    """

    def __init__(self, session: ServeSession, max_batch: int = 1024) -> None:
        if max_batch < 1:
            raise SimulationError("max_batch must be a positive integer")
        self.session = session
        self.max_batch = int(max_batch)
        self._events: List[RequestEvent] = []
        self._last_id: Optional[int] = None
        self.finished = False

    @property
    def buffered(self) -> int:
        """Number of events waiting for the next drain."""
        return len(self._events)

    def _reply(self, kind: str, payload: Mapping) -> Dict[str, object]:
        reply = {"type": kind}
        if self._last_id is not None:
            reply["id"] = self._last_id
        reply.update(payload)
        return reply

    def drain(self) -> Optional[Dict[str, object]]:
        """Serve the buffered events now (``None`` when nothing waits)."""
        if not self._events:
            return None
        events, self._events = self._events, []
        return self._reply("ack", self.session.feed(events))

    def add(
        self, message: Mapping, events: Optional[Sequence[RequestEvent]] = None
    ) -> List[Dict[str, object]]:
        """Ingest one decoded message; returns the replies it produced."""
        if self.finished:
            raise SimulationError("stream already ended")
        mtype = message.get("type")
        if "id" in message:
            self._last_id = int(message["id"])
        replies: List[Dict[str, object]] = []
        if mtype == "requests":
            self._events.extend(
                events if events is not None else decode_events(message["events"])
            )
            while len(self._events) >= self.max_batch:
                chunk = self._events[: self.max_batch]
                del self._events[: self.max_batch]
                replies.append(self._reply("ack", self.session.feed(chunk)))
        elif mtype == "mutation":
            drained = self.drain()
            if drained is not None:
                replies.append(drained)
            replies.append(self._reply("ack", self.session.mutate(message["op"])))
        elif mtype == "flush":
            drained = self.drain()
            replies.append(
                drained
                if drained is not None
                else self._reply("ack", {"position": self.session.position})
            )
        elif mtype == "end":
            drained = self.drain()
            if drained is not None:
                replies.append(drained)
            self.finished = True
            replies.append(self._reply("end", {"summary": self.session.finish()}))
        else:
            raise SimulationError(f"unknown message type {mtype!r}")
        return replies


def build_session(
    spec,
    strategy: Optional[str] = None,
    chunk_size: Optional[int] = None,
    recorder=None,
) -> ServeSession:
    """Materialise one fresh :class:`ServeSession` from a scenario spec.

    The spec's network, strategy construction and sink set are reused
    verbatim (one fresh strategy instance per session); the spec's own
    request sequence only parameterises hindsight strategies and the sink
    sample grid -- the *served* events come from the client stream.  The
    recorder header pins ``(spec, strategy, chunk_size)``, so
    :func:`~repro.serve.recorder.replay_recording` rebuilds the identical
    session offline.
    """
    from repro.sim.scenario import build_scenario

    built = build_scenario(spec)[0]
    names = [name for name, _ in built.strategies]
    wanted = strategy if strategy is not None else names[0]
    if wanted not in names:
        raise SimulationError(
            f"spec {spec.name!r} has no strategy {wanted!r} (have {names})"
        )
    factory = dict(built.strategies)[wanted]
    session = ServeSession(
        factory(),
        n_objects=built.sequence.n_objects,
        sinks=built.make_sinks(),
        chunk_size=chunk_size,
        recorder=recorder,
        meta={
            "scenario": built.name,
            "label": built.label,
            "strategy": wanted,
        },
    )
    if recorder is not None:
        recorder.write_header(
            spec=spec.to_dict(),
            strategy=wanted,
            chunk_size=chunk_size,
            n_objects=built.sequence.n_objects,
        )
    return session


def resume_session(path, sync: bool = False):
    """Rebuild a crashed session from its journal; continue appending to it.

    Heals the journal back to its last durable item (truncating a torn
    trailing line, dropping a graceful ``aborted`` footer), rebuilds the
    session exactly as the server originally built it, and replays the
    journal's events and mutations in recorded order through the live
    :class:`~repro.sim.engine.EngineStream`.  Because the stream re-cuts
    every batch at the offline span grid (invariant 10), the rebuilt
    session is in the *identical* state the crashed one was at the
    watermark -- which is what makes "recovered equals uninterrupted"
    (invariant 11) an exact statement rather than a best effort.

    Returns ``(session, position, n_mutations)``: the live session with
    an append-mode recorder attached, the number of replayed request
    events (the acked-event watermark) and the number of replayed
    mutations -- the two cursors a reconnecting client rewinds to.
    """
    from repro.serve.recorder import StreamRecorder, heal_journal, load_recording
    from repro.sim.scenario import ScenarioSpec

    heal = heal_journal(path)
    if heal.sealed:
        raise SimulationError(
            f"journal {path} is sealed (the stream completed); nothing to resume"
        )
    recording = load_recording(path)
    spec = ScenarioSpec.from_dict(recording.header["spec"])
    session = build_session(
        spec,
        strategy=recording.header["strategy"],
        chunk_size=recording.header.get("chunk_size"),
        recorder=None,
    )
    # Replay events and mutations in their recorded interleaving: a
    # mutation at time t saw exactly t request events before it.
    events = recording.events
    position = 0
    for time, op in recording.mutations:
        if time > position:
            session.feed(events[position:time])
            position = time
        session.mutate(op)
    if position < len(events):
        session.feed(events[position:])
    session.recorder = StreamRecorder(path, sync=sync, append=True)
    return session, len(events), len(recording.mutations)
