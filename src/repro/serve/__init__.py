"""Streaming placement service: the online front end of the kernel.

The paper's strategies are *online* -- they decide per request as it
arrives -- but everything else in the repo replays prerecorded sequences.
This package wraps the simulation kernel in a long-lived serving loop:

* :mod:`repro.serve.wire` -- the JSON-lines wire format (request/churn
  messages in, placement acks and live metrics out) and the mutation
  serialisation it needs;
* :mod:`repro.serve.batcher` -- :class:`~repro.serve.batcher.ServeSession`
  (one client stream driven through an
  :class:`~repro.sim.engine.EngineStream`) and the micro-batcher that
  coalesces ingested messages into serve spans;
* :mod:`repro.serve.recorder` -- every served stream is recorded as it is
  ingested and can be re-run offline;
  :func:`~repro.serve.recorder.replay_recording` is the offline half of
  ARCHITECTURE invariant 10 (*served equals replayed*);
* :mod:`repro.serve.server` -- the asyncio ingestion server behind
  ``repro serve`` (bounded queues, explicit backpressure);
* :mod:`repro.serve.loadgen` -- the load-generator client behind
  ``repro loadgen`` (target events/sec, achieved throughput and latency
  percentiles, per-read timeouts and reconnect-with-resume).

Recordings double as write-ahead journals: items are journaled before
they are served, sessions carry resumable tokens, and a crashed session
is rebuilt by replaying its healed journal through the engine stream --
bit-for-bit equal to an uninterrupted run (ARCHITECTURE invariant 11,
*recovered equals uninterrupted*; :mod:`repro.faults` is the seeded
chaos plane that proves it).
"""

from repro.serve.batcher import (
    ServeSession,
    build_session,
    result_record,
    resume_session,
)
from repro.serve.recorder import (
    JournalHeal,
    StreamRecorder,
    heal_journal,
    load_recording,
    replay_recording,
)
from repro.serve.server import PlacementServer, ServerThread
from repro.serve.wire import mutation_from_dict, mutation_to_dict

__all__ = [
    "ServeSession",
    "build_session",
    "resume_session",
    "result_record",
    "StreamRecorder",
    "JournalHeal",
    "heal_journal",
    "load_recording",
    "replay_recording",
    "PlacementServer",
    "ServerThread",
    "mutation_from_dict",
    "mutation_to_dict",
]
