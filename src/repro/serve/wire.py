"""The JSON-lines wire format of the streaming placement service.

One connection carries one session.  Every message is a single JSON
object on its own ``\\n``-terminated line (UTF-8); docs/SERVING.md is the
narrative description.  Client messages:

``{"type": "requests", "id": n, "events": [[proc, obj, "r"|"w"], ...]}``
    A batch of request events, in issue order.  ``id`` is a client-chosen
    monotonically increasing integer used for ack matching.
``{"type": "mutation", "id": n, "op": {...}}``
    One churn mutation, scheduled at the current stream position (i.e.
    before the next request event).  ``op`` is the mutation encoding of
    :func:`mutation_to_dict`.
``{"type": "flush", "id": n}``
    Force the engine to drain everything ingested so far and ack.
``{"type": "end", "id": n}``
    Seal the stream; the server replies with the final summary.
``{"type": "resume", "token": t}``
    Only valid as the *first* client message: abandon the fresh session
    and continue session ``t`` from its journal instead.  The server
    replays the healed journal through the engine stream and answers
    ``resumed`` with the durable watermark (or the recorded ``end``
    summary when the journal turns out to be sealed).

Server messages:

``{"type": "session", ...}``
    Sent once on connect: scenario/strategy identity, universe sizes,
    the engine batching parameters, plus the session ``token`` (the
    journal name, usable in ``resume`` after a lost connection) and
    ``journal`` (whether the server records sessions at all).
``{"type": "resumed", "token": t, "position": p, "n_mutations": m}``
    Reply to ``resume``: the journal replayed cleanly and the session
    continues after ``p`` request events and ``m`` mutations.  The
    client rewinds both cursors and re-sends only unacked items.
``{"type": "ack", "id": n, "position": p, "served": s, "dropped": d,
"congestion": c, "total_load": t}``
    Covers every client message with id <= ``n``.  The engine
    micro-batches ingestion, so one ack may cover several ``requests``
    messages; the metrics are the live sink reads after serving them.
``{"type": "end", "summary": {...}}``
    The canonical result record of the sealed stream (see
    :func:`repro.serve.batcher.result_record`).
``{"type": "error", "message": ..., "code": ..., "retry_after": ...}``
    Protocol or workload error; the connection closes after this.
    ``code`` (optional) makes degradation structured: ``overloaded`` and
    ``draining`` carry a ``retry_after`` hint in seconds and mean "come
    back later", ``watchdog`` means the engine-pass deadline fired,
    ``unknown-token``/``no-journal`` reject a ``resume``.

The mutation encoding covers the closed mutation set of
:mod:`repro.network.mutation`; :func:`mutation_from_dict` is its exact
inverse and rejects unknown kinds, so a recorded stream replays only
mutations the offline engine understands.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.dynamic.sequence import READ, WRITE, RequestEvent
from repro.errors import SimulationError
from repro.network.mutation import (
    AttachLeaf,
    DetachLeaf,
    Mutation,
    SetBusBandwidth,
    SetEdgeBandwidth,
    SplitBus,
)

__all__ = [
    "WIRE_FORMAT",
    "encode_message",
    "decode_message",
    "encode_events",
    "decode_events",
    "mutation_to_dict",
    "mutation_from_dict",
]

WIRE_FORMAT = "repro.serve/v1"

_KIND_CODE = {READ: "r", WRITE: "w"}
_CODE_KIND = {"r": READ, "w": WRITE, READ: READ, WRITE: WRITE}


def encode_message(message: Mapping) -> bytes:
    """One wire line: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict:
    """Inverse of :func:`encode_message` (raises on non-object payloads)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SimulationError(f"malformed wire line {line!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise SimulationError("wire messages must be JSON objects with a 'type'")
    return message


def encode_events(events: Sequence[RequestEvent]) -> List[List]:
    """Events -> the compact ``[proc, obj, "r"|"w"]`` triple list."""
    return [[ev.processor, ev.obj, _KIND_CODE[ev.kind]] for ev in events]


def decode_events(rows: Sequence) -> List[RequestEvent]:
    """Inverse of :func:`encode_events` (loud on malformed rows)."""
    events = []
    for row in rows:
        try:
            proc, obj, code = row
            events.append(RequestEvent(int(proc), int(obj), _CODE_KIND[code]))
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed event row {row!r}") from exc
    return events


# --------------------------------------------------------------------------- #
# mutation serialisation (closed set)
# --------------------------------------------------------------------------- #
def mutation_to_dict(mutation: Mutation) -> Dict:
    """Plain-JSON encoding of one mutation of the closed set."""
    if isinstance(mutation, SetEdgeBandwidth):
        return {
            "kind": "set-edge-bandwidth",
            "u": mutation.u,
            "v": mutation.v,
            "bandwidth": mutation.bandwidth,
        }
    if isinstance(mutation, SetBusBandwidth):
        return {
            "kind": "set-bus-bandwidth",
            "bus": mutation.bus,
            "bandwidth": mutation.bandwidth,
        }
    if isinstance(mutation, AttachLeaf):
        return {
            "kind": "attach-leaf",
            "bus": mutation.bus,
            "name": mutation.name,
            "bandwidth": mutation.bandwidth,
        }
    if isinstance(mutation, DetachLeaf):
        return {"kind": "detach-leaf", "processor": mutation.processor}
    if isinstance(mutation, SplitBus):
        return {
            "kind": "split-bus",
            "bus": mutation.bus,
            "moved": list(mutation.moved),
            "name": mutation.name,
            "bus_bandwidth": mutation.bus_bandwidth,
            "trunk_bandwidth": mutation.trunk_bandwidth,
        }
    raise SimulationError(f"cannot serialise mutation {type(mutation).__name__}")


def mutation_from_dict(document: Mapping) -> Mutation:
    """Exact inverse of :func:`mutation_to_dict`."""
    try:
        kind = document["kind"]
        if kind == "set-edge-bandwidth":
            return SetEdgeBandwidth(
                int(document["u"]),
                int(document["v"]),
                float(document["bandwidth"]),
            )
        if kind == "set-bus-bandwidth":
            return SetBusBandwidth(
                int(document["bus"]), float(document["bandwidth"])
            )
        if kind == "attach-leaf":
            name = document.get("name")
            return AttachLeaf(
                int(document["bus"]),
                name=str(name) if name is not None else None,
                bandwidth=float(document.get("bandwidth", 1.0)),
            )
        if kind == "detach-leaf":
            return DetachLeaf(int(document["processor"]))
        if kind == "split-bus":
            name = document.get("name")
            return SplitBus(
                int(document["bus"]),
                moved=tuple(int(x) for x in document["moved"]),
                name=str(name) if name is not None else None,
                bus_bandwidth=float(document.get("bus_bandwidth", 1.0)),
                trunk_bandwidth=float(document.get("trunk_bandwidth", 1.0)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed mutation document {document!r}") from exc
    raise SimulationError(f"unknown mutation kind {document.get('kind')!r}")


def roundtrip_check(mutation: Mutation) -> Tuple[Dict, Mutation]:
    """Encode-decode one mutation (tests lean on the exact inverse)."""
    encoded = mutation_to_dict(mutation)
    return encoded, mutation_from_dict(encoded)
