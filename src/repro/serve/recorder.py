"""Stream recordings: the durable journal of every served stream.

A recording is a JSON-lines file (``repro.stream-recording/v1``):

* line 1 -- the header: the full scenario spec, the served strategy
  label, the engine ``chunk_size`` and the object-universe size.  That is
  everything needed to rebuild the identical session offline.
* one line per ingested item, in arrival order:
  ``{"events": [[proc, obj, "r"|"w"], ...]}`` for a served micro-batch,
  ``{"mutation": {...}, "time": t}`` for a churn mutation (``t`` is the
  number of request events ingested before it -- exactly the
  :class:`~repro.network.mutation.ChurnTrace` time contract).
* the footer: ``{"summary": {...}}`` with the canonical result record of
  the served stream (or ``{"aborted": reason}`` for a stream that died).

**Write-ahead journal.**  The recorder writes every item *before* the
engine serves it and (in ``sync`` mode) fsyncs each line, so the
position a client saw acked is always covered by durable journal bytes
-- the acked-event watermark.  A crash mid-write leaves at worst one
*torn trailing line*; :func:`heal_journal` truncates it (and any
``aborted`` footer) back to the last durable item, and
:func:`load_recording` skips a torn tail with a warning instead of
refusing the whole file.  Crash-safe sessions rebuild from exactly this
healed prefix (ARCHITECTURE invariant 11: recovered equals
uninterrupted).

:func:`replay_recording` is the offline half of ARCHITECTURE invariant
10: it rebuilds the session from the header, replays the recorded
sequence and churn trace through the *offline*
:class:`~repro.sim.engine.SimulationEngine`, and returns the replayed
record next to the recorded served one.  For any completed stream the
two are bit-for-bit equal.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import SimulationError
from repro.network.mutation import ChurnTrace
from repro.serve.wire import decode_events, encode_events, mutation_from_dict

__all__ = [
    "RECORDING_FORMAT",
    "StreamRecorder",
    "JournalHeal",
    "heal_journal",
    "load_recording",
    "replay_recording",
]

RECORDING_FORMAT = "repro.stream-recording/v1"


class StreamRecorder:
    """Append-only JSONL journal for one served stream.

    The file is created lazily on the first write, so a session that is
    abandoned before recording anything (e.g. a connection that turns out
    to be a *resume* of an older session) leaves no file behind.

    Parameters
    ----------
    sync:
        When True, every line is fsynced to disk before the write
        returns -- the write-ahead-journal mode of crash-safe serving
        (acks only cover events whose journal bytes are durable).
    append:
        Open an *existing* journal for continuation (session resume).
        The header is already on disk, so :meth:`write_header` refuses.
    """

    def __init__(self, path, sync: bool = False, append: bool = False) -> None:
        self.path = Path(path)
        self.sync = bool(sync)
        self._append = bool(append)
        if append and not self.path.exists():
            raise SimulationError(
                f"cannot append to missing journal {self.path}"
            )
        self._fh = None
        self._closed = False
        self._pending_header: Optional[Dict] = None

    @property
    def opened(self) -> bool:
        """True once the journal file has been created/opened."""
        return self._fh is not None

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(
                self.path, "a" if self._append else "w", encoding="utf-8"
            )
        return self._fh

    def _emit(self, document: Dict) -> None:
        line = json.dumps(document, separators=(",", ":")) + "\n"
        fh = self._handle()
        fault = faults.fault_point("recorder.write")
        if fault is not None and fault.kind == "torn-write":
            # persist only a prefix, then die: the torn-trailing-line
            # scenario heal_journal exists for
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            faults.raise_fault(fault)
        if fault is not None:
            faults.raise_fault(fault)
        fh.write(line)
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())

    def _write(self, document: Dict) -> None:
        if self._closed:
            raise SimulationError(f"recording {self.path} is already closed")
        if self._pending_header is not None:
            header, self._pending_header = self._pending_header, None
            self._emit(header)
        self._emit(document)

    def write_header(
        self,
        spec: Dict,
        strategy: str,
        chunk_size: Optional[int],
        n_objects: int,
    ) -> None:
        """Stage the header line: everything needed to rebuild the session.

        The header is *deferred*: it hits the disk immediately before the
        first recorded item (or footer), so a session that never records
        anything -- e.g. a connection that turns out to be a resume of an
        older session -- leaves no file at all.
        """
        if self._append:
            raise SimulationError(
                f"journal {self.path} opened for append already has a header"
            )
        self._pending_header = {
            "format": RECORDING_FORMAT,
            "spec": spec,
            "strategy": strategy,
            "chunk_size": chunk_size,
            "n_objects": int(n_objects),
        }

    def record_events(self, events: Sequence[RequestEvent]) -> None:
        """One served micro-batch, in arrival order."""
        self._write({"events": encode_events(events)})

    def record_mutation(self, op: Dict, time: int) -> None:
        """One churn mutation at stream position ``time``."""
        self._write({"mutation": dict(op), "time": int(time)})

    def close(self, summary: Dict) -> None:
        """The footer of a completed stream."""
        self._write({"summary": summary})
        self._closed = True
        if self._fh is not None:
            self._fh.close()

    def abort(self, reason: str) -> None:
        """The footer of a stream that died mid-flight."""
        if not self._closed:
            self._write({"aborted": str(reason)})
            self._closed = True
            if self._fh is not None:
                self._fh.close()

    def crash(self) -> None:
        """Simulate abrupt death: drop the handle, write no footer.

        The fault plane uses this so an injected crash leaves the journal
        exactly as a killed process would -- possibly mid-line -- which is
        what the resume path must recover from.
        """
        self._closed = True
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass


# --------------------------------------------------------------------------- #
# journal healing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class JournalHeal:
    """What :func:`heal_journal` found (and repaired) in one journal."""

    n_events: int
    n_mutations: int
    truncated_torn_line: bool
    dropped_aborted_footer: bool
    sealed: bool  # a summary footer is present: the stream completed

    @property
    def repaired(self) -> bool:
        return self.truncated_torn_line or self.dropped_aborted_footer


def _parse_lines(text: str) -> Tuple[List[Dict], Optional[str]]:
    """Split journal text into parsed item lines plus an optional torn tail.

    A line is *torn* when it is the final line and either fails to parse
    or is not newline-terminated (the write may have been cut after the
    payload but before the terminator).  A malformed line anywhere else
    is corruption, not a crash artefact, and raises.
    """
    items: List[Dict] = []
    raw_lines = text.split("\n")
    terminated = text.endswith("\n")
    if terminated:
        raw_lines = raw_lines[:-1]  # the split artefact after the final \n
    for index, line in enumerate(raw_lines):
        last = index == len(raw_lines) - 1
        try:
            item = json.loads(line)
            if not isinstance(item, dict):
                raise ValueError("journal lines must be JSON objects")
        except ValueError as exc:
            if last:
                return items, line
            raise SimulationError(
                f"corrupt journal line {index + 1}: {line!r}"
            ) from exc
        if last and not terminated:
            # parses, but the newline never made it to disk: the write
            # was not durably complete, so treat it as torn
            return items, line
        items.append(item)
    return items, None


def heal_journal(path) -> JournalHeal:
    """Repair a journal in place back to its last durable item.

    Truncates a torn trailing line (crash mid-write) and drops a trailing
    ``aborted`` footer (a *graceful* abort is not a seal -- the session it
    marks can still be resumed).  Raises when the file is missing, not a
    recording, or corrupt beyond a trailing-line tear.
    """
    path = Path(path)
    if not path.exists():
        raise SimulationError(f"no journal at {path}")
    text = path.read_text(encoding="utf-8")
    items, torn = _parse_lines(text)
    if not items:
        raise SimulationError(f"journal {path} has no intact header line")
    if items[0].get("format") != RECORDING_FORMAT:
        raise SimulationError(
            f"{path} is not a {RECORDING_FORMAT} recording "
            f"(format: {items[0].get('format')!r})"
        )
    dropped_aborted = False
    if "aborted" in items[-1]:
        items = items[:-1]
        dropped_aborted = True
    healed = "".join(
        json.dumps(item, separators=(",", ":")) + "\n" for item in items
    )
    if torn is not None or dropped_aborted:
        path.write_text(healed, encoding="utf-8")
    n_events = sum(len(item.get("events", ())) for item in items)
    n_mutations = sum(1 for item in items if "mutation" in item)
    return JournalHeal(
        n_events=n_events,
        n_mutations=n_mutations,
        truncated_torn_line=torn is not None,
        dropped_aborted_footer=dropped_aborted,
        sealed=any("summary" in item for item in items),
    )


# --------------------------------------------------------------------------- #
# loading and offline replay
# --------------------------------------------------------------------------- #
class Recording:
    """One parsed recording (header, items, optional footer)."""

    def __init__(
        self,
        header: Dict,
        events: List[RequestEvent],
        mutations: List[Tuple[int, Dict]],
        summary: Optional[Dict],
        aborted: Optional[str],
    ) -> None:
        self.header = header
        self.events = events
        self.mutations = mutations
        self.summary = summary
        self.aborted = aborted

    @property
    def complete(self) -> bool:
        """True when the stream was sealed and its summary recorded."""
        return self.summary is not None and self.aborted is None

    def sequence(self) -> RequestSequence:
        """The recorded events over the session's object universe."""
        return RequestSequence(self.events, int(self.header["n_objects"]))

    def trace(self) -> Optional[ChurnTrace]:
        """The recorded churn trace (``None`` when no mutation arrived)."""
        if not self.mutations:
            return None
        return ChurnTrace(
            [(time, mutation_from_dict(op)) for time, op in self.mutations]
        )


def load_recording(path) -> Recording:
    """Parse one recording file (loud on malformed or wrong-format files).

    A *torn trailing line* -- the footprint of a crash mid-write -- is
    skipped with a warning rather than failing the whole recording: the
    intact prefix is exactly the durable journal, which is what crash
    recovery replays.  Corruption anywhere else still raises.
    """
    text = Path(path).read_text(encoding="utf-8")
    items, torn = _parse_lines(text)
    if torn is not None:
        warnings.warn(
            f"recording {path} ends in a torn line (crash mid-write); "
            f"ignoring the {len(torn)}-byte tail",
            stacklevel=2,
        )
    if not items:
        raise SimulationError(f"recording {path} is empty")
    header = items[0]
    if header.get("format") != RECORDING_FORMAT:
        raise SimulationError(
            f"{path} is not a {RECORDING_FORMAT} recording "
            f"(format: {header.get('format')!r})"
        )
    events: List[RequestEvent] = []
    mutations: List[Tuple[int, Dict]] = []
    summary: Optional[Dict] = None
    aborted: Optional[str] = None
    for item in items[1:]:
        if "events" in item:
            events.extend(decode_events(item["events"]))
        elif "mutation" in item:
            mutations.append((int(item["time"]), item["mutation"]))
        elif "summary" in item:
            summary = item["summary"]
        elif "aborted" in item:
            aborted = item["aborted"]
        else:
            raise SimulationError(f"unknown recording item {item!r}")
    return Recording(header, events, mutations, summary, aborted)


def replay_recording(path) -> Tuple[Dict, Optional[Dict]]:
    """Re-run one recorded stream offline; returns ``(replayed, served)``.

    The session is rebuilt exactly as the server built it (same spec,
    same strategy factory, same sink construction, same ``chunk_size``),
    the recorded sequence and churn trace go through the offline
    :class:`~repro.sim.engine.SimulationEngine`, and the replayed
    canonical record is returned next to the served one from the footer
    (``None`` for a partial recording).  Invariant 10 says the two are
    equal for any completed stream.
    """
    from repro.serve.batcher import result_record
    from repro.sim.engine import SimulationEngine
    from repro.sim.scenario import ScenarioSpec, build_scenario

    recording = load_recording(path)
    spec = ScenarioSpec.from_dict(recording.header["spec"])
    built = build_scenario(spec)[0]
    wanted = recording.header["strategy"]
    factories = dict(built.strategies)
    if wanted not in factories:
        raise SimulationError(
            f"recording {path} wants strategy {wanted!r}, spec has "
            f"{sorted(factories)}"
        )
    engine = SimulationEngine(
        factories[wanted](),
        sinks=built.make_sinks(),
        chunk_size=recording.header.get("chunk_size"),
    )
    result = engine.run(recording.sequence(), recording.trace())
    return result_record(result), recording.summary
