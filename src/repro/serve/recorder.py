"""Stream recordings: every served stream can be re-run offline.

A recording is a JSON-lines file (``repro.stream-recording/v1``):

* line 1 -- the header: the full scenario spec, the served strategy
  label, the engine ``chunk_size`` and the object-universe size.  That is
  everything needed to rebuild the identical session offline.
* one line per ingested item, in arrival order:
  ``{"events": [[proc, obj, "r"|"w"], ...]}`` for a served micro-batch,
  ``{"mutation": {...}, "time": t}`` for a churn mutation (``t`` is the
  number of request events ingested before it -- exactly the
  :class:`~repro.network.mutation.ChurnTrace` time contract).
* the footer: ``{"summary": {...}}`` with the canonical result record of
  the served stream (or ``{"aborted": reason}`` for a stream that died).

:func:`replay_recording` is the offline half of ARCHITECTURE invariant
10: it rebuilds the session from the header, replays the recorded
sequence and churn trace through the *offline*
:class:`~repro.sim.engine.SimulationEngine`, and returns the replayed
record next to the recorded served one.  For any completed stream the
two are bit-for-bit equal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import SimulationError
from repro.network.mutation import ChurnTrace
from repro.serve.wire import decode_events, encode_events, mutation_from_dict

__all__ = [
    "RECORDING_FORMAT",
    "StreamRecorder",
    "load_recording",
    "replay_recording",
]

RECORDING_FORMAT = "repro.stream-recording/v1"


class StreamRecorder:
    """Append-only JSONL writer for one served stream.

    Items are flushed per line, so a crashed server leaves a readable
    partial recording (without a footer -- :func:`load_recording` reports
    it as incomplete).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._closed = False

    def _write(self, document: Dict) -> None:
        if self._closed:
            raise SimulationError(f"recording {self.path} is already closed")
        self._fh.write(json.dumps(document, separators=(",", ":")) + "\n")
        self._fh.flush()

    def write_header(
        self,
        spec: Dict,
        strategy: str,
        chunk_size: Optional[int],
        n_objects: int,
    ) -> None:
        """The first line: everything needed to rebuild the session."""
        self._write(
            {
                "format": RECORDING_FORMAT,
                "spec": spec,
                "strategy": strategy,
                "chunk_size": chunk_size,
                "n_objects": int(n_objects),
            }
        )

    def record_events(self, events: Sequence[RequestEvent]) -> None:
        """One served micro-batch, in arrival order."""
        self._write({"events": encode_events(events)})

    def record_mutation(self, op: Dict, time: int) -> None:
        """One churn mutation at stream position ``time``."""
        self._write({"mutation": dict(op), "time": int(time)})

    def close(self, summary: Dict) -> None:
        """The footer of a completed stream."""
        self._write({"summary": summary})
        self._closed = True
        self._fh.close()

    def abort(self, reason: str) -> None:
        """The footer of a stream that died mid-flight."""
        if not self._closed:
            self._write({"aborted": str(reason)})
            self._closed = True
            self._fh.close()


# --------------------------------------------------------------------------- #
# loading and offline replay
# --------------------------------------------------------------------------- #
class Recording:
    """One parsed recording (header, items, optional footer)."""

    def __init__(
        self,
        header: Dict,
        events: List[RequestEvent],
        mutations: List[Tuple[int, Dict]],
        summary: Optional[Dict],
        aborted: Optional[str],
    ) -> None:
        self.header = header
        self.events = events
        self.mutations = mutations
        self.summary = summary
        self.aborted = aborted

    @property
    def complete(self) -> bool:
        """True when the stream was sealed and its summary recorded."""
        return self.summary is not None and self.aborted is None

    def sequence(self) -> RequestSequence:
        """The recorded events over the session's object universe."""
        return RequestSequence(self.events, int(self.header["n_objects"]))

    def trace(self) -> Optional[ChurnTrace]:
        """The recorded churn trace (``None`` when no mutation arrived)."""
        if not self.mutations:
            return None
        return ChurnTrace(
            [(time, mutation_from_dict(op)) for time, op in self.mutations]
        )


def load_recording(path) -> Recording:
    """Parse one recording file (loud on malformed or wrong-format files)."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise SimulationError(f"recording {path} is empty")
    header = json.loads(lines[0])
    if header.get("format") != RECORDING_FORMAT:
        raise SimulationError(
            f"{path} is not a {RECORDING_FORMAT} recording "
            f"(format: {header.get('format')!r})"
        )
    events: List[RequestEvent] = []
    mutations: List[Tuple[int, Dict]] = []
    summary: Optional[Dict] = None
    aborted: Optional[str] = None
    for line in lines[1:]:
        item = json.loads(line)
        if "events" in item:
            events.extend(decode_events(item["events"]))
        elif "mutation" in item:
            mutations.append((int(item["time"]), item["mutation"]))
        elif "summary" in item:
            summary = item["summary"]
        elif "aborted" in item:
            aborted = item["aborted"]
        else:
            raise SimulationError(f"unknown recording item {item!r}")
    return Recording(header, events, mutations, summary, aborted)


def replay_recording(path) -> Tuple[Dict, Optional[Dict]]:
    """Re-run one recorded stream offline; returns ``(replayed, served)``.

    The session is rebuilt exactly as the server built it (same spec,
    same strategy factory, same sink construction, same ``chunk_size``),
    the recorded sequence and churn trace go through the offline
    :class:`~repro.sim.engine.SimulationEngine`, and the replayed
    canonical record is returned next to the served one from the footer
    (``None`` for a partial recording).  Invariant 10 says the two are
    equal for any completed stream.
    """
    from repro.serve.batcher import result_record
    from repro.sim.engine import SimulationEngine
    from repro.sim.scenario import ScenarioSpec, build_scenario

    recording = load_recording(path)
    spec = ScenarioSpec.from_dict(recording.header["spec"])
    built = build_scenario(spec)[0]
    wanted = recording.header["strategy"]
    factories = dict(built.strategies)
    if wanted not in factories:
        raise SimulationError(
            f"recording {path} wants strategy {wanted!r}, spec has "
            f"{sorted(factories)}"
        )
    engine = SimulationEngine(
        factories[wanted](),
        sinks=built.make_sinks(),
        chunk_size=recording.header.get("chunk_size"),
    )
    result = engine.run(recording.sequence(), recording.trace())
    return result_record(result), recording.summary
