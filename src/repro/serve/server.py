"""The asyncio ingestion server behind ``repro serve``.

One TCP connection carries one session: a fresh strategy is materialised
from the server's scenario spec, the client streams request/churn
messages (:mod:`repro.serve.wire`), and placement acks with live sink
metrics stream back.

**Batching.**  A reader task parses lines into a *bounded*
:class:`asyncio.Queue`; the engine task takes one message, then
opportunistically drains whatever else is already queued before serving,
so micro-batches grow exactly when ingestion outruns the engine and
shrink to single messages when the stream is idle -- steady-state
throughput rides the same chunk fast path as the offline replay, with no
batching timers.

**Backpressure.**  When the queue is full the reader stops consuming the
socket (it is awaiting ``put``), so TCP flow control pushes back to the
client; the outbound side awaits ``drain`` after every ack burst.  An
overloaded server therefore slows its clients down instead of buffering
unboundedly.

**Recording.**  With a record directory configured, every session is
persisted as a ``repro.stream-recording/v1`` file while it is served;
:func:`repro.serve.recorder.replay_recording` re-runs it offline
(invariant 10: served equals replayed).

**Crash-safe sessions.**  Each session's recording doubles as a
write-ahead journal: items are journaled *before* the engine serves
them, so every acked position is covered by durable journal bytes.  The
session ``token`` in the hello names the journal; a client whose
connection died sends ``{"type": "resume", "token": ...}`` as its first
message and the server rebuilds the session by replaying the healed
journal through the engine stream (exact by invariant 10), replying
``{"type": "resumed", "position": P, "n_mutations": M}`` so the client
rewinds to the watermark and re-sends only unacked items -- exactly-once,
end to end (invariant 11).  Tokens survive server restarts: they are
journal file names, and fresh tokens never reuse an existing file.

**Graceful degradation.**  ``max_active`` sheds connections beyond the
limit with a structured ``{"type": "error", "code": "overloaded",
"retry_after": ...}`` instead of queueing them; SIGTERM (or
:meth:`PlacementServer.request_drain`) stops accepting new sessions and
lets active ones finish; an optional ``watchdog`` deadline bounds each
engine pass so a stalled engine task turns into a structured error
instead of a silent hang.
"""

from __future__ import annotations

import asyncio
import re
import signal
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.errors import InjectedFault, ReproError, SimulationError
from repro.serve.batcher import MicroBatcher, build_session, resume_session
from repro.serve.recorder import StreamRecorder, heal_journal, load_recording
from repro.serve.wire import WIRE_FORMAT, decode_message, encode_message

__all__ = ["PlacementServer", "ServerThread"]

_TOKEN_RE = re.compile(r"^session-\d{4,}$")


def _coded(message: str, code: str) -> SimulationError:
    """A SimulationError carrying a structured wire error code."""
    exc = SimulationError(message)
    exc.code = code  # read by the error reply writer
    return exc


class PlacementServer:
    """Session factory + connection handler of the streaming service.

    Parameters
    ----------
    spec:
        The :class:`~repro.sim.scenario.ScenarioSpec` every session is
        materialised from (network, strategy construction, sink set).
    strategy:
        Strategy label to serve (default: the spec's first strategy).
    chunk_size:
        Engine chunk bound passed through to the session streams.
    batch_size:
        Upper bound on events per engine micro-batch.
    queue_size:
        Bound of the per-connection inbound message queue (the
        backpressure knob).
    record_dir:
        When set, one recording file per session is written here.  This
        is also what makes sessions resumable: no record dir, no journal,
        no resume.
    max_sessions:
        When set, :meth:`wait_done` returns after that many sessions
        have completed (the CI smoke mode).
    journal_sync:
        fsync every journal line before serving it (the write-ahead
        durability mode; acks then only ever cover durable bytes).
    watchdog:
        Optional deadline in seconds for one engine pass; exceeding it
        aborts the session with a structured ``watchdog`` error instead
        of hanging the connection.
    max_active:
        Optional bound on concurrently active sessions; connections
        beyond it are shed with ``code="overloaded"`` and a
        ``retry_after`` hint rather than queued.
    retry_after:
        The retry hint (seconds) sent with shed/draining errors.
    """

    def __init__(
        self,
        spec,
        strategy: Optional[str] = None,
        chunk_size: Optional[int] = None,
        batch_size: int = 1024,
        queue_size: int = 1024,
        record_dir=None,
        max_sessions: Optional[int] = None,
        journal_sync: bool = False,
        watchdog: Optional[float] = None,
        max_active: Optional[int] = None,
        retry_after: float = 0.5,
    ) -> None:
        self.spec = spec
        self.strategy = strategy
        self.chunk_size = chunk_size
        self.batch_size = int(batch_size)
        self.queue_size = int(queue_size)
        self.record_dir = Path(record_dir) if record_dir is not None else None
        self.max_sessions = max_sessions
        self.journal_sync = bool(journal_sync)
        self.watchdog = watchdog
        self.max_active = max_active
        self.retry_after = float(retry_after)
        self.sessions_served = 0
        self.sessions_resumed = 0
        self.sessions_shed = 0
        self.recordings: List[Path] = []
        self._counter = 0
        self._active = 0
        self._draining = False
        self._done: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    def _done_event(self) -> asyncio.Event:
        if self._done is None:
            self._done = asyncio.Event()
        return self._done

    def request_stop(self) -> None:
        """Make :meth:`wait_done` return (thread-safe via call_soon)."""
        self._done_event().set()

    def request_drain(self) -> None:
        """Graceful shutdown: shed new connections, finish active ones.

        This is the SIGTERM handler.  Once the last active session
        completes (immediately, if none is active), the server stops.
        """
        self._draining = True
        if self._active == 0:
            self.request_stop()

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_done(self) -> None:
        """Block until the session quota is reached or stop is requested."""
        await self._done_event().wait()

    # ------------------------------------------------------------------ #
    def _next_token(self) -> str:
        """A fresh session token: a journal name no session ever used.

        Tokens are journal file stems, so they survive server restarts;
        after a restart over an old record dir the counter skips every
        name that already has a journal on disk instead of clobbering it.
        """
        while True:
            self._counter += 1
            token = f"session-{self._counter:04d}"
            if self.record_dir is None:
                return token
            if not (self.record_dir / f"{token}.jsonl").exists():
                return token

    def _make_recorder(self, token: str) -> Optional[StreamRecorder]:
        if self.record_dir is None:
            return None
        path = self.record_dir / f"{token}.jsonl"
        self.recordings.append(path)
        return StreamRecorder(path, sync=self.journal_sync)

    # ------------------------------------------------------------------ #
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one session (asyncio.start_server callback)."""
        state: Dict[str, object] = {"session": None}
        accepted = False
        try:
            fault = faults.fault_point("server.accept")
            if fault is not None:
                # sever the connection before any handshake: the client
                # sees an abrupt reset, exactly like a dying frontend
                writer.transport.abort()
                return
            if self._draining or (
                self.max_active is not None and self._active >= self.max_active
            ):
                code = "draining" if self._draining else "overloaded"
                self.sessions_shed += 1
                writer.write(
                    encode_message(
                        {
                            "type": "error",
                            "code": code,
                            "retry_after": self.retry_after,
                            "message": (
                                f"server is {code}; "
                                f"retry after {self.retry_after}s"
                            ),
                        }
                    )
                )
                await writer.drain()
                return
            self._active += 1
            accepted = True
            token = self._next_token()
            session = build_session(
                self.spec,
                strategy=self.strategy,
                chunk_size=self.chunk_size,
                recorder=self._make_recorder(token),
            )
            state["session"] = session
            state["token"] = token
            info: Dict[str, object] = {
                "type": "session",
                "format": WIRE_FORMAT,
                "batch_size": self.batch_size,
                "token": token,
                "journal": self.record_dir is not None,
            }
            info.update(session.session_info())
            writer.write(encode_message(info))
            await writer.drain()
            await self._serve_stream(state, reader, writer)
        except InjectedFault:
            # simulated process death: no footer, no error reply, the
            # journal stays exactly as a killed process would leave it
            session = state["session"]
            if session is not None:
                session.crash()
            try:
                writer.transport.abort()
            except (ConnectionError, RuntimeError):
                pass
        except ReproError as exc:
            session = state["session"]
            if session is not None:
                session.abort(str(exc))
            payload: Dict[str, object] = {"type": "error", "message": str(exc)}
            code = getattr(exc, "code", None)
            if code is not None:
                payload["code"] = code
            try:
                writer.write(encode_message(payload))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except ConnectionError:
            session = state["session"]
            if session is not None:
                session.abort("connection lost")
        finally:
            if accepted:
                self._active -= 1
                if self._draining and self._active == 0:
                    self.request_stop()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                # loop teardown can cancel the close handshake; the
                # session is already complete, so finish quietly
                pass

    def _count_completed(self) -> None:
        """One stream completed *and its client heard the summary*.

        A crash that eats the final reply leaves the journal sealed but
        the session uncounted; the count happens when the client resumes
        and the recorded summary is delivered instead -- so a
        ``max_sessions`` server never exits while its last client is
        still owed an answer.
        """
        self.sessions_served += 1
        if (
            self.max_sessions is not None
            and self.sessions_served >= self.max_sessions
        ):
            self.request_stop()

    # ------------------------------------------------------------------ #
    def _switch_to_resume(self, state: Dict, message: Dict) -> Dict:
        """Swap the fresh session for one rebuilt from a journal.

        Returns the reply to send: ``resumed`` with the watermark, or --
        when the journal turns out to be sealed because the crash ate
        only the final ack -- the recorded ``end`` summary itself, which
        closes the exactly-once loop without re-running anything.
        """
        if self.record_dir is None:
            raise _coded(
                "server keeps no journals (no record dir); resume unavailable",
                "no-journal",
            )
        token = str(message.get("token", ""))
        path = self.record_dir / f"{token}.jsonl"
        if not _TOKEN_RE.match(token) or not path.exists():
            raise _coded(f"unknown session token {token!r}", "unknown-token")
        fresh = state["session"]
        if (
            fresh is not None
            and fresh.recorder is not None
            and not fresh.recorder.opened
        ):
            # the eagerly built session never journaled anything; drop
            # its never-created recording from the listing
            try:
                self.recordings.remove(fresh.recorder.path)
            except ValueError:
                pass
        try:
            heal = heal_journal(path)
        except SimulationError as exc:
            # e.g. the crash tore the header line itself: nothing in the
            # journal was ever durable, so the token is as good as unknown
            # and a client that saw no acks restarts fresh, exactly-once
            raise _coded(
                f"journal for {token!r} is unrecoverable: {exc}",
                "unknown-token",
            ) from exc
        if heal.sealed:
            recording = load_recording(path)
            state["sealed"] = True
            return {"type": "end", "token": token, "summary": recording.summary}
        session, position, n_mutations = resume_session(
            path, sync=self.journal_sync
        )
        state["session"] = session
        state["token"] = token
        state["batcher"] = MicroBatcher(session, max_batch=self.batch_size)
        self.sessions_resumed += 1
        if path not in self.recordings:
            self.recordings.append(path)
        return {
            "type": "resumed",
            "token": token,
            "position": position,
            "n_mutations": n_mutations,
        }

    async def _serve_stream(self, state: Dict, reader, writer) -> None:
        queue: asyncio.Queue = asyncio.Queue(self.queue_size)
        state["batcher"] = MicroBatcher(
            state["session"], max_batch=self.batch_size
        )

        async def read_loop() -> None:
            while True:
                line = await reader.readline()
                await queue.put(line if line else None)
                if not line:
                    return

        async def engine_pass(item) -> Tuple[List[Dict], bool]:
            """One engine iteration: the item plus whatever is queued."""
            fault = faults.fault_point("server.engine")
            if fault is not None:
                if fault.kind == "stall":
                    # the scenario the watchdog deadline exists to catch
                    await asyncio.sleep(fault.seconds)
                else:
                    faults.raise_fault(fault)
            batcher = state["batcher"]
            replies: List[Dict] = []
            eof = False
            # opportunistic micro-batching: also serve whatever is
            # already queued, so batches grow exactly under load
            while True:
                if item is None:
                    eof = True
                    break
                replies.extend(batcher.add(decode_message(item)))
                if batcher.finished:
                    break
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            if not batcher.finished:
                drained = batcher.drain()
                if drained is not None:
                    replies.append(drained)
            return replies, eof

        reader_task = asyncio.create_task(read_loop())
        first = True
        try:
            eof = False
            while not (state["batcher"].finished or eof):
                item = await queue.get()
                if first:
                    first = False
                    if item is not None:
                        message = decode_message(item)
                        if message.get("type") == "resume":
                            reply = self._switch_to_resume(state, message)
                            writer.write(encode_message(reply))
                            await writer.drain()
                            if state.get("sealed"):
                                # the stream completed on a connection
                                # whose final reply never arrived, so it
                                # was never counted: its completion is
                                # *this* delivery of the recorded summary
                                self._count_completed()
                                return
                            continue
                if self.watchdog is not None:
                    try:
                        replies, eof = await asyncio.wait_for(
                            engine_pass(item), self.watchdog
                        )
                    except asyncio.TimeoutError:
                        raise _coded(
                            f"engine watchdog: one engine pass exceeded "
                            f"{self.watchdog}s; session aborted",
                            "watchdog",
                        ) from None
                else:
                    replies, eof = await engine_pass(item)
                for reply in replies:
                    data = encode_message(reply)
                    fault = faults.fault_point("server.ack-write")
                    if fault is not None:
                        if fault.kind == "slow-write":
                            # partial write, a pause, then the rest: the
                            # slow-peer / fragmented-write simulation
                            writer.write(data[: len(data) // 2])
                            await writer.drain()
                            await asyncio.sleep(fault.seconds)
                            writer.write(data[len(data) // 2 :])
                            continue
                        faults.raise_fault(fault)
                    writer.write(data)
                if replies:
                    await writer.drain()
            if eof and not state["batcher"].finished:
                state["session"].abort("client disconnected before end")
            if state["batcher"].finished:
                self._count_completed()
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------ #
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0, ready=None
    ) -> Tuple[str, int]:
        """Listen, serve until done/stopped, then shut the listener down.

        ``ready`` (optional callable) receives the bound ``(host, port)``
        once the listener is up -- the CLI prints it, tests capture it.
        Installs a SIGTERM handler (where the platform and thread allow
        it) that drains: active sessions finish, new ones are shed.
        Returns the bound address.
        """
        server = await asyncio.start_server(self.handle, host, port)
        bound = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready(bound)
        loop = asyncio.get_running_loop()
        sigterm_installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            sigterm_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            # not the main thread (ServerThread) or no signal support:
            # draining stays available via request_drain()
            pass
        try:
            async with server:
                await self.wait_done()
        finally:
            if sigterm_installed:
                loop.remove_signal_handler(signal.SIGTERM)
        return bound


class ServerThread:
    """Run a :class:`PlacementServer` on a daemon thread (tests, loadgen).

    ``start()`` blocks until the listener is bound and returns the
    ``(host, port)`` address; ``stop()`` requests shutdown and joins.
    """

    def __init__(
        self, server: PlacementServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            await self.server.serve(
                self.host,
                self.port,
                ready=lambda bound: (
                    setattr(self, "address", tuple(bound)),
                    self._ready.set(),
                ),
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.address is None:
            raise RuntimeError("server did not bind within 30s")
        return self.address

    def drain(self) -> None:
        """Thread-safe graceful drain (the SIGTERM path, callable here)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass  # loop already closed

    def stop(self, timeout: float = 10) -> None:
        if self._loop is not None and self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
