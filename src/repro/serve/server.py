"""The asyncio ingestion server behind ``repro serve``.

One TCP connection carries one session: a fresh strategy is materialised
from the server's scenario spec, the client streams request/churn
messages (:mod:`repro.serve.wire`), and placement acks with live sink
metrics stream back.

**Batching.**  A reader task parses lines into a *bounded*
:class:`asyncio.Queue`; the engine task takes one message, then
opportunistically drains whatever else is already queued before serving,
so micro-batches grow exactly when ingestion outruns the engine and
shrink to single messages when the stream is idle -- steady-state
throughput rides the same chunk fast path as the offline replay, with no
batching timers.

**Backpressure.**  When the queue is full the reader stops consuming the
socket (it is awaiting ``put``), so TCP flow control pushes back to the
client; the outbound side awaits ``drain`` after every ack burst.  An
overloaded server therefore slows its clients down instead of buffering
unboundedly.

**Recording.**  With a record directory configured, every session is
persisted as a ``repro.stream-recording/v1`` file while it is served;
:func:`repro.serve.recorder.replay_recording` re-runs it offline
(invariant 10: served equals replayed).
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.batcher import MicroBatcher, build_session
from repro.serve.recorder import StreamRecorder
from repro.serve.wire import WIRE_FORMAT, decode_message, encode_message

__all__ = ["PlacementServer", "ServerThread"]


class PlacementServer:
    """Session factory + connection handler of the streaming service.

    Parameters
    ----------
    spec:
        The :class:`~repro.sim.scenario.ScenarioSpec` every session is
        materialised from (network, strategy construction, sink set).
    strategy:
        Strategy label to serve (default: the spec's first strategy).
    chunk_size:
        Engine chunk bound passed through to the session streams.
    batch_size:
        Upper bound on events per engine micro-batch.
    queue_size:
        Bound of the per-connection inbound message queue (the
        backpressure knob).
    record_dir:
        When set, one recording file per session is written here.
    max_sessions:
        When set, :meth:`wait_done` returns after that many sessions
        have completed (the CI smoke mode).
    """

    def __init__(
        self,
        spec,
        strategy: Optional[str] = None,
        chunk_size: Optional[int] = None,
        batch_size: int = 1024,
        queue_size: int = 1024,
        record_dir=None,
        max_sessions: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.strategy = strategy
        self.chunk_size = chunk_size
        self.batch_size = int(batch_size)
        self.queue_size = int(queue_size)
        self.record_dir = Path(record_dir) if record_dir is not None else None
        self.max_sessions = max_sessions
        self.sessions_served = 0
        self.recordings: List[Path] = []
        self._done: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    def _done_event(self) -> asyncio.Event:
        if self._done is None:
            self._done = asyncio.Event()
        return self._done

    def request_stop(self) -> None:
        """Make :meth:`wait_done` return (thread-safe via call_soon)."""
        self._done_event().set()

    async def wait_done(self) -> None:
        """Block until the session quota is reached or stop is requested."""
        await self._done_event().wait()

    def _make_recorder(self) -> Optional[StreamRecorder]:
        if self.record_dir is None:
            return None
        path = self.record_dir / f"session-{len(self.recordings) + 1:04d}.jsonl"
        self.recordings.append(path)
        return StreamRecorder(path)

    # ------------------------------------------------------------------ #
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one session (asyncio.start_server callback)."""
        session = None
        try:
            session = build_session(
                self.spec,
                strategy=self.strategy,
                chunk_size=self.chunk_size,
                recorder=self._make_recorder(),
            )
            info: Dict[str, object] = {
                "type": "session",
                "format": WIRE_FORMAT,
                "batch_size": self.batch_size,
            }
            info.update(session.session_info())
            writer.write(encode_message(info))
            await writer.drain()
            await self._serve_stream(session, reader, writer)
        except ReproError as exc:
            if session is not None:
                session.abort(str(exc))
            try:
                writer.write(
                    encode_message({"type": "error", "message": str(exc)})
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except ConnectionError:
            if session is not None:
                session.abort("connection lost")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                # loop teardown can cancel the close handshake; the
                # session is already complete, so finish quietly
                pass

    async def _serve_stream(self, session, reader, writer) -> None:
        queue: asyncio.Queue = asyncio.Queue(self.queue_size)
        batcher = MicroBatcher(session, max_batch=self.batch_size)

        async def read_loop() -> None:
            while True:
                line = await reader.readline()
                await queue.put(line if line else None)
                if not line:
                    return

        reader_task = asyncio.create_task(read_loop())
        try:
            eof = False
            while not (batcher.finished or eof):
                item = await queue.get()
                replies: List[Dict] = []
                # opportunistic micro-batching: also serve whatever is
                # already queued, so batches grow exactly under load
                while True:
                    if item is None:
                        eof = True
                        break
                    replies.extend(batcher.add(decode_message(item)))
                    if batcher.finished:
                        break
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                if not batcher.finished:
                    drained = batcher.drain()
                    if drained is not None:
                        replies.append(drained)
                for reply in replies:
                    writer.write(encode_message(reply))
                if replies:
                    await writer.drain()
            if eof and not batcher.finished:
                session.abort("client disconnected before end")
            if batcher.finished:
                self.sessions_served += 1
                if (
                    self.max_sessions is not None
                    and self.sessions_served >= self.max_sessions
                ):
                    self.request_stop()
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------ #
    async def serve(
        self, host: str = "127.0.0.1", port: int = 0, ready=None
    ) -> Tuple[str, int]:
        """Listen, serve until done/stopped, then shut the listener down.

        ``ready`` (optional callable) receives the bound ``(host, port)``
        once the listener is up -- the CLI prints it, tests capture it.
        Returns the bound address.
        """
        server = await asyncio.start_server(self.handle, host, port)
        bound = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready(bound)
        async with server:
            await self.wait_done()
        return bound


class ServerThread:
    """Run a :class:`PlacementServer` on a daemon thread (tests, loadgen).

    ``start()`` blocks until the listener is bound and returns the
    ``(host, port)`` address; ``stop()`` requests shutdown and joins.
    """

    def __init__(
        self, server: PlacementServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            await self.server.serve(
                self.host,
                self.port,
                ready=lambda bound: (
                    setattr(self, "address", tuple(bound)),
                    self._ready.set(),
                ),
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.address is None:
            raise RuntimeError("server did not bind within 30s")
        return self.address

    def stop(self, timeout: float = 10) -> None:
        if self._loop is not None and self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
            self._thread.join(timeout=timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
