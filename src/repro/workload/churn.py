"""Churn generators: seeded topology-mutation traces.

Counterpart of the synthetic workload generators for the topology side of a
scenario.  Each generator returns a deterministic
:class:`~repro.network.mutation.ChurnTrace` for a given seed; mutation
targets always refer to node ids *at apply time* (the generators simulate
the mutation chain while choosing targets, so traces stay valid across the
renumbering a detach causes).

* :func:`flash_crowd_attach` -- a burst of new processors joins (think of
  an audience arriving at once); stresses placement near the joined buses.
* :func:`flash_crowd_recovery` -- the same burst followed by a rolling
  departure of the newcomers (the multi-phase flash-crowd-with-recovery
  regime of the scenario registry).
* :func:`rolling_maintenance_detach` -- processors leave one by one at a
  fixed cadence (rolling maintenance); copies stranded on departed leaves
  are re-homed by the replay layer.
* :func:`bandwidth_degradation` -- trunk edges and buses progressively lose
  bandwidth (failing switches); loads are untouched but relative loads and
  the congestion climb.
* :func:`mutation_storm` -- a seeded mix of every mutation kind, including
  bus splits; this is the adversarial scenario the differential fuzz
  harness replays.
* :func:`random_valid_mutation` -- one uniformly drawn valid mutation; the
  building block of :func:`mutation_storm`, exported for property tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    DetachLeaf,
    Mutation,
    SetBusBandwidth,
    SetEdgeBandwidth,
    SplitBus,
    TimedMutation,
    apply_mutation,
)
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "flash_crowd_attach",
    "flash_crowd_recovery",
    "rolling_maintenance_detach",
    "bandwidth_degradation",
    "mutation_storm",
    "random_valid_mutation",
]


def _rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def _detachable_processors(network: HierarchicalBusNetwork) -> List[int]:
    """Processors whose removal keeps the network valid."""
    if network.n_processors <= 2:
        return []
    out = []
    for p in network.processors:
        (bus,) = network.neighbors(p)
        if network.degree(bus) > 2:
            out.append(p)
    return out


def flash_crowd_attach(
    network: HierarchicalBusNetwork,
    n_new_leaves: int = 8,
    time: int = 0,
    spacing: int = 0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """A burst of ``n_new_leaves`` processors joining random buses.

    All attaches land at ``time`` (a flash crowd) unless ``spacing`` spreads
    them out.  The k-th attached leaf gets replay reference id
    ``network.n_nodes + k`` (see :mod:`repro.dynamic.churn`), so request
    generators can address the newcomers before they exist.
    """
    if n_new_leaves < 1:
        raise WorkloadError("need at least one attached leaf")
    gen = _rng(rng, seed)
    buses = list(network.buses)
    if not buses:
        raise WorkloadError("cannot attach leaves to a bus-less network")
    events = []
    t = int(time)
    for k in range(n_new_leaves):
        bus = int(gen.choice(buses))
        events.append(TimedMutation(t, AttachLeaf(bus, name=f"crowd{k}")))
        t += int(spacing)
    return ChurnTrace(events)


def flash_crowd_recovery(
    network: HierarchicalBusNetwork,
    n_new_leaves: int = 8,
    attach_time: int = 0,
    detach_start: int = 0,
    detach_spacing: int = 1,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """A flash crowd that later *recovers*: the newcomers leave again.

    The attach burst is exactly :func:`flash_crowd_attach` (same reference
    ids ``network.n_nodes + k``, same bus choices for a given seed); from
    ``detach_start`` on, one newcomer departs every ``detach_spacing``
    events, most recently attached first, so the ids of the remaining
    newcomers stay stable while the crowd drains.  Requests addressed to a
    departed newcomer are dropped by the replay, modelling the multi-phase
    flash-crowd-with-recovery regime.
    """
    if detach_start < attach_time:
        raise WorkloadError("recovery cannot start before the crowd arrives")
    if detach_spacing < 0:
        raise WorkloadError("detach_spacing must be non-negative")
    trace = flash_crowd_attach(
        network, n_new_leaves=n_new_leaves, time=attach_time, rng=rng, seed=seed
    )
    base_n = network.n_nodes
    events: List[TimedMutation] = []
    t = int(detach_start)
    # detach in reverse attach order: with only attaches before, newcomer k
    # holds id base_n + k, and removing the highest id never renumbers the
    # remaining newcomers
    for k in reversed(range(n_new_leaves)):
        events.append(TimedMutation(t, DetachLeaf(base_n + k)))
        t += int(detach_spacing)
    return trace.concatenated_with(ChurnTrace(events))


def rolling_maintenance_detach(
    network: HierarchicalBusNetwork,
    n_detach: int = 4,
    start: int = 0,
    spacing: int = 8,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """Detach up to ``n_detach`` random processors, one every ``spacing`` events.

    Targets are chosen among processors whose removal keeps the network
    valid *at apply time* (the generator simulates the chain); fewer
    mutations are returned when the network runs out of detachable leaves.
    """
    if n_detach < 1:
        raise WorkloadError("need at least one detach")
    gen = _rng(rng, seed)
    events = []
    net = network
    t = int(start)
    for _ in range(n_detach):
        candidates = _detachable_processors(net)
        if not candidates:
            break
        mutation = DetachLeaf(int(gen.choice(candidates)))
        events.append(TimedMutation(t, mutation))
        net = apply_mutation(net, mutation).network
        t += int(spacing)
    return ChurnTrace(events)


def bandwidth_degradation(
    network: HierarchicalBusNetwork,
    n_steps: int = 4,
    start: int = 0,
    spacing: int = 8,
    factor: float = 0.5,
    floor: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """Progressively degrade trunk-edge and bus bandwidths.

    Every ``spacing`` events one random trunk edge (bus-bus switch) or bus
    has its bandwidth multiplied by ``factor`` (clamped at ``floor``).
    Networks without trunk edges degrade buses only.
    """
    if n_steps < 1:
        raise WorkloadError("need at least one degradation step")
    if not 0 < factor < 1:
        raise WorkloadError("factor must be in (0, 1)")
    if floor <= 0:
        raise WorkloadError("floor must be positive")
    gen = _rng(rng, seed)
    trunk_edges: List[Tuple[int, int]] = [
        (e.u, e.v)
        for e in network.edges
        if network.is_bus(e.u) and network.is_bus(e.v)
    ]
    buses = list(network.buses)
    if not buses and not trunk_edges:
        raise WorkloadError("network has neither buses nor trunk edges to degrade")
    events = []
    net = network
    t = int(start)
    for _ in range(n_steps):
        degrade_edge = bool(trunk_edges) and (not buses or gen.random() < 0.5)
        if degrade_edge:
            u, v = trunk_edges[int(gen.integers(0, len(trunk_edges)))]
            new_bw = max(float(floor), net.edge_bandwidth(u, v) * factor)
            mutation: Mutation = SetEdgeBandwidth(u, v, new_bw)
        else:
            bus = int(gen.choice(buses))
            new_bw = max(float(floor), net.bus_bandwidth(bus) * factor)
            mutation = SetBusBandwidth(bus, new_bw)
        events.append(TimedMutation(t, mutation))
        net = apply_mutation(net, mutation).network
        t += int(spacing)
    return ChurnTrace(events)


def random_valid_mutation(
    network: HierarchicalBusNetwork,
    rng: np.random.Generator,
    max_bandwidth: int = 4,
) -> Mutation:
    """Draw one uniformly random mutation that is valid for ``network``.

    The draw retries kinds that have no valid target (e.g. detach on a
    minimal network), so a mutation is always returned for any valid
    network with at least one bus.
    """
    if not network.buses:
        raise WorkloadError("mutations need at least one bus")
    rooted = network.rooted()
    while True:
        kind = int(rng.integers(0, 5))
        if kind == 0:
            e = network.edges[int(rng.integers(0, network.n_edges))]
            return SetEdgeBandwidth(e.u, e.v, float(rng.integers(1, max_bandwidth + 1)))
        if kind == 1:
            bus = int(rng.choice(network.buses))
            return SetBusBandwidth(bus, float(rng.integers(1, max_bandwidth + 1)))
        if kind == 2:
            return AttachLeaf(int(rng.choice(network.buses)))
        if kind == 3:
            candidates = _detachable_processors(network)
            if candidates:
                return DetachLeaf(int(rng.choice(candidates)))
        if kind == 4:
            splittable = [b for b in network.buses if rooted.children(b)]
            if splittable:
                bus = int(rng.choice(splittable))
                kids = rooted.children(bus)
                k = int(rng.integers(1, len(kids) + 1))
                moved = tuple(
                    sorted(int(m) for m in rng.choice(kids, size=k, replace=False))
                )
                if network.degree(bus) - len(moved) + 1 >= 2:
                    return SplitBus(bus, moved)


def mutation_storm(
    network: HierarchicalBusNetwork,
    n_mutations: int = 12,
    start: int = 0,
    spacing: int = 4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """A seeded mix of every mutation kind at a fixed cadence.

    The adversarial scenario: attaches, detaches, splits and bandwidth
    changes interleave, exercising renumbering, re-homing and denominator
    repair together.  Targets are valid at apply time (chain simulated).
    """
    if n_mutations < 1:
        raise WorkloadError("need at least one mutation")
    gen = _rng(rng, seed)
    events = []
    net = network
    t = int(start)
    for _ in range(n_mutations):
        mutation = random_valid_mutation(net, gen)
        events.append(TimedMutation(t, mutation))
        net = apply_mutation(net, mutation).network
        t += int(spacing)
    return ChurnTrace(events)
