"""Synthetic workload generators.

The paper's algorithms consume only the frequency matrices ``h_r`` and
``h_w``; these generators produce the access-pattern regimes that the
introduction motivates (global variables of parallel programs, pages of a
virtual shared memory system, WWW pages):

* :func:`uniform_pattern` -- every processor accesses every object with the
  same expected frequency.
* :func:`zipf_pattern` -- object popularity follows a Zipf law (WWW-style).
* :func:`hotspot_pattern` -- a few processors generate most of the traffic.
* :func:`subtree_local_pattern` -- each object is mostly accessed inside one
  subtree of the bus hierarchy (data locality, the regime in which the
  nibble strategy keeps traffic low in the hierarchy).
* :func:`read_write_mix` -- rescale the read/write ratio of any pattern.
* :func:`random_sparse_pattern` -- sparse random requests, useful for
  property-based tests.

All generators are deterministic given a :class:`numpy.random.Generator` or
a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "uniform_pattern",
    "zipf_pattern",
    "hotspot_pattern",
    "subtree_local_pattern",
    "random_sparse_pattern",
    "read_write_mix",
    "zipf_weights",
]


def _rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def _scatter_to_processors(
    network: HierarchicalBusNetwork, per_processor: np.ndarray
) -> np.ndarray:
    """Expand a ``(n_processors, n_objects)`` matrix to node-id indexed rows."""
    out = np.zeros((network.n_nodes, per_processor.shape[1]), dtype=np.int64)
    out[list(network.processors), :] = per_processor
    return out


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities ``p_i ∝ 1 / (i+1)^exponent``."""
    if n <= 0:
        raise WorkloadError("need at least one item for a Zipf distribution")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-float(exponent)
    return weights / weights.sum()


def uniform_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    requests_per_processor: int = 32,
    write_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Uniform access pattern.

    Every processor issues ``requests_per_processor`` requests, each to a
    uniformly random object; a request is a write with probability
    ``write_fraction``.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError("write_fraction must be in [0, 1]")
    gen = _rng(rng, seed)
    n_p = network.n_processors
    reads = np.zeros((n_p, n_objects), dtype=np.int64)
    writes = np.zeros((n_p, n_objects), dtype=np.int64)
    for p in range(n_p):
        objs = gen.integers(0, n_objects, size=requests_per_processor)
        is_write = gen.random(requests_per_processor) < write_fraction
        np.add.at(writes[p], objs[is_write], 1)
        np.add.at(reads[p], objs[~is_write], 1)
    return AccessPattern(
        _scatter_to_processors(network, reads),
        _scatter_to_processors(network, writes),
    )


def zipf_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    requests_per_processor: int = 32,
    exponent: float = 1.0,
    write_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Zipf-popular objects (WWW-page style workload).

    Object popularity follows a Zipf law with the given exponent; every
    processor draws its requests independently from that popularity
    distribution.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError("write_fraction must be in [0, 1]")
    gen = _rng(rng, seed)
    probs = zipf_weights(n_objects, exponent)
    n_p = network.n_processors
    reads = np.zeros((n_p, n_objects), dtype=np.int64)
    writes = np.zeros((n_p, n_objects), dtype=np.int64)
    for p in range(n_p):
        objs = gen.choice(n_objects, size=requests_per_processor, p=probs)
        is_write = gen.random(requests_per_processor) < write_fraction
        np.add.at(writes[p], objs[is_write], 1)
        np.add.at(reads[p], objs[~is_write], 1)
    return AccessPattern(
        _scatter_to_processors(network, reads),
        _scatter_to_processors(network, writes),
    )


def hotspot_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    n_hot_processors: int = 2,
    hot_requests: int = 128,
    cold_requests: int = 8,
    write_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """A few "hot" processors issue most of the requests.

    This stresses the placement near the hot processors' switch edges, which
    have bandwidth one and are the system bottleneck in the paper's model.
    """
    gen = _rng(rng, seed)
    n_p = network.n_processors
    if n_hot_processors < 0 or n_hot_processors > n_p:
        raise WorkloadError("n_hot_processors out of range")
    hot = set(gen.choice(n_p, size=n_hot_processors, replace=False).tolist())
    reads = np.zeros((n_p, n_objects), dtype=np.int64)
    writes = np.zeros((n_p, n_objects), dtype=np.int64)
    for p in range(n_p):
        budget = hot_requests if p in hot else cold_requests
        if budget == 0:
            continue
        objs = gen.integers(0, n_objects, size=budget)
        is_write = gen.random(budget) < write_fraction
        np.add.at(writes[p], objs[is_write], 1)
        np.add.at(reads[p], objs[~is_write], 1)
    return AccessPattern(
        _scatter_to_processors(network, reads),
        _scatter_to_processors(network, writes),
    )


def subtree_local_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    requests_per_processor: int = 32,
    locality: float = 0.9,
    write_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Objects with an affinity to one region of the bus hierarchy.

    Every object is assigned a *home bus*; processors below the home bus
    access the object with probability proportional to ``locality``, all
    other processors with probability proportional to ``1 - locality``.
    With high locality, a good placement keeps almost all traffic inside the
    home subtree, which is exactly the regime the hierarchical placement
    strategies are designed for.
    """
    if not 0.0 <= locality <= 1.0:
        raise WorkloadError("locality must be in [0, 1]")
    gen = _rng(rng, seed)
    rooted = network.rooted()
    buses = list(network.buses) if network.buses else [network.canonical_root()]
    processors = list(network.processors)
    proc_index = {p: i for i, p in enumerate(processors)}
    n_p = len(processors)

    # membership[b_idx, p_idx] = 1 if processor p lies in the subtree of bus b
    membership = np.zeros((len(buses), n_p), dtype=bool)
    for bi, bus in enumerate(buses):
        for p in processors:
            if rooted.is_ancestor(bus, p):
                membership[bi, proc_index[p]] = True
    # Some buses (the root) contain every processor; that is fine.

    reads = np.zeros((n_p, n_objects), dtype=np.int64)
    writes = np.zeros((n_p, n_objects), dtype=np.int64)
    home_buses = gen.integers(0, len(buses), size=n_objects)
    for x in range(n_objects):
        inside = membership[home_buses[x]]
        weights = np.where(inside, locality, 1.0 - locality)
        if weights.sum() == 0:
            weights = np.ones(n_p)
        probs = weights / weights.sum()
        total = requests_per_processor * max(1, int(inside.sum()))
        procs = gen.choice(n_p, size=total, p=probs)
        is_write = gen.random(total) < write_fraction
        np.add.at(writes[:, x], procs[is_write], 1)
        np.add.at(reads[:, x], procs[~is_write], 1)
    return AccessPattern(
        _scatter_to_processors(network, reads),
        _scatter_to_processors(network, writes),
    )


def random_sparse_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    density: float = 0.3,
    max_frequency: int = 10,
    write_probability: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Sparse random frequencies, mainly for testing.

    Each (processor, object) pair independently receives requests with
    probability ``density``; the read and write counts are uniform in
    ``[0, max_frequency]`` with writes enabled with ``write_probability``.
    """
    if not 0.0 <= density <= 1.0:
        raise WorkloadError("density must be in [0, 1]")
    gen = _rng(rng, seed)
    n_p = network.n_processors
    active = gen.random((n_p, n_objects)) < density
    reads = gen.integers(0, max_frequency + 1, size=(n_p, n_objects)) * active
    write_mask = (gen.random((n_p, n_objects)) < write_probability) & active
    writes = gen.integers(0, max_frequency + 1, size=(n_p, n_objects)) * write_mask
    return AccessPattern(
        _scatter_to_processors(network, reads.astype(np.int64)),
        _scatter_to_processors(network, writes.astype(np.int64)),
    )


def read_write_mix(
    pattern: AccessPattern,
    read_weight: int = 1,
    write_weight: int = 1,
) -> AccessPattern:
    """Rescale the read and write frequencies of a pattern by integer weights.

    ``read_weight = 3, write_weight = 1`` triples all read frequencies while
    leaving writes untouched, turning any base pattern into a read-mostly
    variant without changing which (processor, object) pairs interact.
    """
    if read_weight < 0 or write_weight < 0:
        raise WorkloadError("weights must be non-negative integers")
    return AccessPattern(
        pattern.reads * int(read_weight),
        pattern.writes * int(write_weight),
        pattern.object_names,
    )
