"""Workload model: access patterns and synthetic workload generators."""

from repro.workload.access import AccessPattern
from repro.workload.generators import (
    hotspot_pattern,
    random_sparse_pattern,
    read_write_mix,
    subtree_local_pattern,
    uniform_pattern,
    zipf_pattern,
    zipf_weights,
)
from repro.workload.traces import (
    producer_consumer_trace,
    shared_counter_trace,
    stencil_halo_trace,
    web_cache_trace,
)
from repro.workload.adversarial import (
    bisection_stress,
    partition_like_pattern,
    replication_trap,
    write_conflict_pattern,
)
from repro.workload.churn import (
    bandwidth_degradation,
    flash_crowd_attach,
    mutation_storm,
    random_valid_mutation,
    rolling_maintenance_detach,
)

__all__ = [
    "AccessPattern",
    "uniform_pattern",
    "zipf_pattern",
    "hotspot_pattern",
    "subtree_local_pattern",
    "random_sparse_pattern",
    "read_write_mix",
    "zipf_weights",
    "shared_counter_trace",
    "producer_consumer_trace",
    "stencil_halo_trace",
    "web_cache_trace",
    "bisection_stress",
    "write_conflict_pattern",
    "replication_trap",
    "partition_like_pattern",
    "flash_crowd_attach",
    "rolling_maintenance_detach",
    "bandwidth_degradation",
    "mutation_storm",
    "random_valid_mutation",
]
