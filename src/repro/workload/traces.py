"""Application-style synthetic traces.

The introduction of the paper motivates the data management problem with
shared objects of parallel programs (global variables, virtual-shared-memory
pages) and of distributed information systems (WWW pages).  These builders
produce frequency matrices shaped like such applications, so the benchmark
harness can report congestion for recognisable workloads rather than only
for abstract random matrices.

* :func:`shared_counter_trace` -- a handful of global counters written by
  everybody (high write contention, the hardest case for replication).
* :func:`producer_consumer_trace` -- objects written by one producer and
  read by a set of consumers.
* :func:`stencil_halo_trace` -- neighbour-to-neighbour halo exchange of an
  iterative 1-D stencil code mapped onto the processor order.
* :func:`web_cache_trace` -- read-mostly Zipf-popular pages with a small
  writer set (origin servers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern
from repro.workload.generators import zipf_weights

__all__ = [
    "shared_counter_trace",
    "producer_consumer_trace",
    "stencil_halo_trace",
    "web_cache_trace",
]


def _empty(network: HierarchicalBusNetwork, n_objects: int):
    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    return reads, writes


def shared_counter_trace(
    network: HierarchicalBusNetwork,
    n_counters: int = 4,
    increments_per_processor: int = 16,
    reads_per_processor: int = 16,
) -> AccessPattern:
    """Global counters: every processor increments and reads every counter.

    Every increment is a write, so the write contention ``κ_x`` equals the
    total number of increments; replication cannot help and a good placement
    concentrates each counter near the gravity centre of its requesters.
    """
    if n_counters < 1:
        raise WorkloadError("need at least one counter")
    reads, writes = _empty(network, n_counters)
    for p in network.processors:
        reads[p, :] += reads_per_processor
        writes[p, :] += increments_per_processor
    names = [f"counter{i}" for i in range(n_counters)]
    return AccessPattern(reads, writes, names)


def producer_consumer_trace(
    network: HierarchicalBusNetwork,
    n_channels: Optional[int] = None,
    items_per_channel: int = 32,
    consumers_per_channel: int = 3,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Producer/consumer channels.

    Each channel object is written ``items_per_channel`` times by a single
    producer processor and read ``items_per_channel`` times by each of its
    consumers.  Producers and consumers are drawn at random (deterministic
    given the seed).
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    procs = list(network.processors)
    if n_channels is None:
        n_channels = len(procs)
    if n_channels < 1:
        raise WorkloadError("need at least one channel")
    consumers_per_channel = min(consumers_per_channel, max(1, len(procs) - 1))
    reads, writes = _empty(network, n_channels)
    for x in range(n_channels):
        producer = procs[int(gen.integers(0, len(procs)))]
        others = [p for p in procs if p != producer]
        if others:
            chosen = gen.choice(len(others), size=consumers_per_channel, replace=False)
            consumers = [others[int(i)] for i in chosen]
        else:  # single-processor network
            consumers = [producer]
        writes[producer, x] += items_per_channel
        for c in consumers:
            reads[c, x] += items_per_channel
    names = [f"channel{i}" for i in range(n_channels)]
    return AccessPattern(reads, writes, names)


def stencil_halo_trace(
    network: HierarchicalBusNetwork,
    iterations: int = 10,
    halo_objects_per_boundary: int = 1,
) -> AccessPattern:
    """1-D stencil halo exchange mapped onto the processor order.

    Processors are arranged in their id order as a logical 1-D chain; each
    boundary between consecutive processors owns ``halo_objects_per_boundary``
    halo objects.  Per iteration the left neighbour writes the halo once and
    the right neighbour reads it once (and vice versa for the mirrored halo),
    which yields the classic neighbour-communication pattern.  On a bus
    hierarchy built with locality (consecutive processors under the same
    bus), traffic should stay low in the tree.
    """
    procs = list(network.processors)
    if len(procs) < 2:
        raise WorkloadError("stencil trace needs at least two processors")
    if iterations < 1:
        raise WorkloadError("need at least one iteration")
    n_boundaries = len(procs) - 1
    n_objects = 2 * n_boundaries * halo_objects_per_boundary
    reads, writes = _empty(network, n_objects)
    names = []
    obj = 0
    for b in range(n_boundaries):
        left, right = procs[b], procs[b + 1]
        for k in range(halo_objects_per_boundary):
            # halo written by the left processor, read by the right one
            writes[left, obj] += iterations
            reads[right, obj] += iterations
            names.append(f"halo_l{b}_{k}")
            obj += 1
            # halo written by the right processor, read by the left one
            writes[right, obj] += iterations
            reads[left, obj] += iterations
            names.append(f"halo_r{b}_{k}")
            obj += 1
    return AccessPattern(reads, writes, names)


def web_cache_trace(
    network: HierarchicalBusNetwork,
    n_pages: int = 64,
    requests_per_processor: int = 64,
    zipf_exponent: float = 0.9,
    update_fraction: float = 0.02,
    n_origin_servers: int = 1,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Read-mostly WWW-page workload.

    Pages have Zipf-distributed popularity; every processor reads pages it
    draws from that distribution, and a small set of origin-server
    processors occasionally update pages (writes).  This is the regime in
    which aggressive replication pays off.
    """
    if n_pages < 1:
        raise WorkloadError("need at least one page")
    if not 0.0 <= update_fraction <= 1.0:
        raise WorkloadError("update_fraction must be in [0, 1]")
    gen = rng if rng is not None else np.random.default_rng(seed)
    procs = list(network.processors)
    probs = zipf_weights(n_pages, zipf_exponent)
    reads, writes = _empty(network, n_pages)
    origin = [procs[i % len(procs)] for i in range(max(1, n_origin_servers))]
    for p in procs:
        pages = gen.choice(n_pages, size=requests_per_processor, p=probs)
        np.add.at(reads[p], pages, 1)
    total_reads = int(reads.sum())
    n_updates = int(round(total_reads * update_fraction))
    for _ in range(n_updates):
        server = origin[int(gen.integers(0, len(origin)))]
        page = int(gen.choice(n_pages, p=probs))
        writes[server, page] += 1
    names = [f"page{i}" for i in range(n_pages)]
    return AccessPattern(reads, writes, names)
