"""Adversarial and stress workloads.

These patterns are designed to be *hard* for placement heuristics:

* :func:`bisection_stress` -- every object is shared by processor pairs on
  opposite sides of the root bus, so all traffic must cross the top of the
  hierarchy regardless of the placement.
* :func:`write_conflict_pattern` -- each object is written heavily by two
  far-apart processors; any placement loads the path between them and
  replication only makes things worse.
* :func:`replication_trap` -- objects that look read-mostly per processor
  but have just enough writes that naive full replication explodes the
  write-broadcast cost.
* :func:`partition_like_pattern` -- a generalisation of the NP-hardness
  gadget workload (Section 2) to arbitrary single-bus networks: one huge
  object pins down one processor and many "item" objects must be split
  evenly between two other processors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "bisection_stress",
    "write_conflict_pattern",
    "replication_trap",
    "partition_like_pattern",
]


def bisection_stress(
    network: HierarchicalBusNetwork,
    n_objects: int,
    requests_per_pair: int = 32,
    write_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """All traffic crosses the root bus.

    Processors are split into the two "heaviest" subtrees below the root;
    each object is accessed by one processor from each side, so every
    placement must route across the root.  This measures how well strategies
    balance an unavoidable load.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    root = network.canonical_root()
    rooted = network.rooted(root)
    children = rooted.children(root)
    if len(children) < 2:
        raise WorkloadError("bisection stress needs a root with at least two subtrees")
    procs_by_side = []
    for child in children:
        side = [p for p in network.processors if rooted.is_ancestor(child, p)]
        procs_by_side.append(side)
    procs_by_side.sort(key=len, reverse=True)
    left, right = procs_by_side[0], procs_by_side[1]
    if not left or not right:
        raise WorkloadError("both sides of the bisection must contain processors")

    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    n_writes = int(round(requests_per_pair * write_fraction))
    n_reads = requests_per_pair - n_writes
    for x in range(n_objects):
        a = left[int(gen.integers(0, len(left)))]
        b = right[int(gen.integers(0, len(right)))]
        reads[a, x] += n_reads
        writes[a, x] += n_writes
        reads[b, x] += n_reads
        writes[b, x] += n_writes
    return AccessPattern(reads, writes)


def write_conflict_pattern(
    network: HierarchicalBusNetwork,
    n_objects: int,
    writes_per_endpoint: int = 32,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Each object is written heavily by two far-apart processors.

    The pair for each object is chosen to (approximately) maximise the tree
    distance, so the unavoidable per-object load is spread across long
    paths.  Write-only traffic means replication never helps.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    procs = list(network.processors)
    if len(procs) < 2:
        raise WorkloadError("need at least two processors")
    rooted = network.rooted()
    # Pre-compute a far partner for every processor.
    far_partner = {}
    for p in procs:
        far_partner[p] = max(
            (q for q in procs if q != p), key=lambda q: (rooted.distance(p, q), -q)
        )
    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    for x in range(n_objects):
        a = procs[int(gen.integers(0, len(procs)))]
        b = far_partner[a]
        writes[a, x] += writes_per_endpoint
        writes[b, x] += writes_per_endpoint
    return AccessPattern(reads, writes)


def replication_trap(
    network: HierarchicalBusNetwork,
    n_objects: int,
    reads_per_processor: int = 8,
    writes_per_object: int = 4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AccessPattern:
    """Read-mostly objects with a thin stream of writes from one writer.

    Full replication turns each of the ``writes_per_object`` writes into a
    broadcast over *all* processor switch edges, so the congestion of the
    full-replication baseline grows with the network size while a selective
    placement keeps it constant.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    procs = list(network.processors)
    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    for x in range(n_objects):
        for p in procs:
            reads[p, x] += reads_per_processor
        writer = procs[int(gen.integers(0, len(procs)))]
        writes[writer, x] += writes_per_object
    return AccessPattern(reads, writes)


def partition_like_pattern(
    network: HierarchicalBusNetwork,
    item_sizes: Sequence[int],
    anchor_processors: Optional[Sequence[int]] = None,
) -> AccessPattern:
    """The Section-2 gadget workload on an arbitrary single-bus network.

    Parameters
    ----------
    network:
        A network with at least four processors (the canonical instance is
        :func:`repro.network.builders.hardness_gadget`).
    item_sizes:
        The PARTITION integers ``k_1, ..., k_n`` (must sum to an even value
        for the decision question to be meaningful, but any positive values
        are accepted).
    anchor_processors:
        The four distinguished processors ``(a, b, s, sbar)``.  Defaults to
        the first four processors of the network.

    Returns
    -------
    AccessPattern
        Objects ``x_1 .. x_n`` and ``y`` with the frequencies of the
        NP-hardness proof: ``h_w(a, y) = 4k + 1``, ``h_w(b, y) = 2k`` and
        ``h_w(v, x_i) = k_i`` for every anchor ``v``.
    """
    sizes = [int(k) for k in item_sizes]
    if not sizes or any(k <= 0 for k in sizes):
        raise WorkloadError("item sizes must be positive integers")
    procs = list(network.processors)
    if anchor_processors is None:
        if len(procs) < 4:
            raise WorkloadError("need at least four processors")
        anchor_processors = procs[:4]
    anchors = [int(p) for p in anchor_processors]
    if len(anchors) != 4 or len(set(anchors)) != 4:
        raise WorkloadError("exactly four distinct anchor processors are required")
    for p in anchors:
        if not network.is_processor(p):
            raise WorkloadError(f"anchor {p} is not a processor")
    a, b, s, sbar = anchors
    total = sum(sizes)
    k = total // 2

    n_objects = len(sizes) + 1
    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    names = [f"x{i + 1}" for i in range(len(sizes))] + ["y"]
    for i, ki in enumerate(sizes):
        for v in (a, b, s, sbar):
            writes[v, i] += ki
    y = len(sizes)
    writes[a, y] = 4 * k + 1
    writes[b, y] = 2 * k
    return AccessPattern(reads, writes, names)
