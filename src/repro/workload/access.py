"""Access patterns: the read/write frequency matrices ``h_r`` and ``h_w``.

The static data management problem (Section 1.1) is parameterised by a set
``X`` of shared data objects and two functions
``h_r, h_w : P × X -> N`` giving, for every processor and object, the number
of read and write accesses.  :class:`AccessPattern` stores these functions as
dense integer matrices indexed by *node id* (rows for buses are zero, since
buses do not issue requests) and *object index*.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["AccessPattern"]


class AccessPattern:
    """Read and write frequencies of every node for every shared object.

    Parameters
    ----------
    reads, writes:
        Integer arrays of shape ``(n_nodes, n_objects)``; ``reads[v, x]`` is
        ``h_r(v, x)`` and ``writes[v, x]`` is ``h_w(v, x)``.
    object_names:
        Optional names of the shared objects (defaults to ``"x0", "x1", ...``).

    Notes
    -----
    Frequencies must be non-negative integers.  Rows belonging to buses must
    be zero; this is checked by :meth:`validate_for` against a concrete
    network (the constructor cannot know which rows are buses).
    """

    __slots__ = ("_reads", "_writes", "_object_names")

    def __init__(
        self,
        reads: np.ndarray,
        writes: np.ndarray,
        object_names: Optional[Sequence[str]] = None,
    ) -> None:
        reads = np.asarray(reads)
        writes = np.asarray(writes)
        if reads.ndim != 2 or writes.ndim != 2:
            raise WorkloadError("reads and writes must be 2-D (n_nodes, n_objects)")
        if reads.shape != writes.shape:
            raise WorkloadError(
                f"reads shape {reads.shape} != writes shape {writes.shape}"
            )
        if reads.dtype.kind not in "iu" or writes.dtype.kind not in "iu":
            if not (
                np.all(np.equal(np.mod(reads, 1), 0))
                and np.all(np.equal(np.mod(writes, 1), 0))
            ):
                raise WorkloadError("frequencies must be integers")
        if np.any(reads < 0) or np.any(writes < 0):
            raise WorkloadError("frequencies must be non-negative")
        self._reads = reads.astype(np.int64)
        self._writes = writes.astype(np.int64)
        n_objects = reads.shape[1]
        if object_names is None:
            object_names = [f"x{i}" for i in range(n_objects)]
        names = [str(n) for n in object_names]
        if len(names) != n_objects:
            raise WorkloadError(
                f"expected {n_objects} object names, got {len(names)}"
            )
        if len(set(names)) != len(names):
            raise WorkloadError("object names must be unique")
        self._object_names: Tuple[str, ...] = tuple(names)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(
        cls,
        n_nodes: int,
        n_objects: int,
        object_names: Optional[Sequence[str]] = None,
    ) -> "AccessPattern":
        """An all-zero access pattern of the given shape."""
        zeros = np.zeros((n_nodes, n_objects), dtype=np.int64)
        return cls(zeros, zeros.copy(), object_names)

    @classmethod
    def from_requests(
        cls,
        network: HierarchicalBusNetwork,
        n_objects: int,
        requests: Iterable[Tuple[int, int, int, int]],
        object_names: Optional[Sequence[str]] = None,
    ) -> "AccessPattern":
        """Build a pattern from ``(processor, object, n_reads, n_writes)`` tuples."""
        reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
        writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
        for proc, obj, r, w in requests:
            if not network.is_processor(proc):
                raise WorkloadError(f"node {proc} is not a processor")
            if not 0 <= obj < n_objects:
                raise WorkloadError(f"object index {obj} out of range")
            if r < 0 or w < 0:
                raise WorkloadError("request counts must be non-negative")
            reads[proc, obj] += int(r)
            writes[proc, obj] += int(w)
        pattern = cls(reads, writes, object_names)
        pattern.validate_for(network)
        return pattern

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of node rows (must equal the network's node count)."""
        return int(self._reads.shape[0])

    @property
    def n_objects(self) -> int:
        """Number of shared data objects ``|X|``."""
        return int(self._reads.shape[1])

    @property
    def object_names(self) -> Tuple[str, ...]:
        """Names of the shared objects."""
        return self._object_names

    @property
    def reads(self) -> np.ndarray:
        """Read-only view of the read-frequency matrix ``h_r``."""
        view = self._reads.view()
        view.flags.writeable = False
        return view

    @property
    def writes(self) -> np.ndarray:
        """Read-only view of the write-frequency matrix ``h_w``."""
        view = self._writes.view()
        view.flags.writeable = False
        return view

    @property
    def totals(self) -> np.ndarray:
        """Matrix ``h = h_r + h_w`` of total accesses per (node, object)."""
        return self._reads + self._writes

    def reads_of(self, node: int, obj: int) -> int:
        """``h_r(node, obj)``."""
        return int(self._reads[node, obj])

    def writes_of(self, node: int, obj: int) -> int:
        """``h_w(node, obj)``."""
        return int(self._writes[node, obj])

    def accesses_of(self, node: int, obj: int) -> int:
        """``h(node, obj) = h_r + h_w``."""
        return int(self._reads[node, obj] + self._writes[node, obj])

    def object_index(self, name: str) -> int:
        """Index of the object called ``name``."""
        try:
            return self._object_names.index(name)
        except ValueError:
            raise WorkloadError(f"no object named {name!r}") from None

    # ------------------------------------------------------------------ #
    # derived per-object quantities
    # ------------------------------------------------------------------ #
    def write_contention(self, obj: int) -> int:
        """The write contention ``κ_x = Σ_P h_w(P, x)`` of object ``obj``."""
        return int(self._writes[:, obj].sum())

    def total_requests(self, obj: int) -> int:
        """Total number of requests ``h_x = Σ_P (h_r + h_w)(P, x)``."""
        return int(self._reads[:, obj].sum() + self._writes[:, obj].sum())

    def write_contentions(self) -> np.ndarray:
        """Vector of ``κ_x`` for every object."""
        return self._writes.sum(axis=0)

    def total_requests_all(self) -> np.ndarray:
        """Vector of total requests per object."""
        return self._reads.sum(axis=0) + self._writes.sum(axis=0)

    def requesters(self, obj: int) -> List[int]:
        """Node ids with at least one request to ``obj``."""
        mask = (self._reads[:, obj] + self._writes[:, obj]) > 0
        return [int(i) for i in np.flatnonzero(mask)]

    def object_weights(self, obj: int) -> np.ndarray:
        """Per-node weight vector ``h(v) = r(v) + w(v)`` for object ``obj``."""
        return (self._reads[:, obj] + self._writes[:, obj]).astype(np.int64)

    def is_trivial(self, obj: int) -> bool:
        """True if ``obj`` receives no requests at all."""
        return self.total_requests(obj) == 0

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def restrict_objects(self, objects: Sequence[int]) -> "AccessPattern":
        """Return a new pattern containing only the selected objects."""
        objects = list(objects)
        names = [self._object_names[i] for i in objects]
        return AccessPattern(
            self._reads[:, objects].copy(), self._writes[:, objects].copy(), names
        )

    def scaled(self, factor: int) -> "AccessPattern":
        """Multiply every frequency by a positive integer factor."""
        if factor <= 0 or int(factor) != factor:
            raise WorkloadError("scale factor must be a positive integer")
        return AccessPattern(
            self._reads * int(factor), self._writes * int(factor), self._object_names
        )

    def combined_with(self, other: "AccessPattern") -> "AccessPattern":
        """Concatenate the objects of two patterns over the same node set."""
        if other.n_nodes != self.n_nodes:
            raise WorkloadError("patterns must be over the same node set")
        names = list(self._object_names)
        for name in other.object_names:
            names.append(name if name not in names else f"{name}'")
        return AccessPattern(
            np.concatenate([self._reads, other.reads], axis=1),
            np.concatenate([self._writes, other.writes], axis=1),
            names,
        )

    # ------------------------------------------------------------------ #
    # validation & serialization
    # ------------------------------------------------------------------ #
    def validate_for(self, network: HierarchicalBusNetwork) -> None:
        """Check compatibility with ``network``.

        Raises :class:`~repro.errors.WorkloadError` if the row count differs
        from the node count or if any bus row is non-zero (buses do not issue
        requests in the hierarchical bus model).
        """
        if self.n_nodes != network.n_nodes:
            raise WorkloadError(
                f"pattern has {self.n_nodes} node rows, network has "
                f"{network.n_nodes} nodes"
            )
        for bus in network.buses:
            if self._reads[bus].any() or self._writes[bus].any():
                raise WorkloadError(
                    f"bus {bus} has non-zero frequencies; buses cannot issue requests"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Encode the pattern into a JSON-serialisable dictionary."""
        return {
            "format": "repro.workload/v1",
            "object_names": list(self._object_names),
            "reads": self._reads.tolist(),
            "writes": self._writes.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AccessPattern":
        """Decode a dictionary produced by :meth:`to_dict`."""
        if data.get("format") != "repro.workload/v1":
            raise WorkloadError(
                f"unsupported workload format {data.get('format')!r}"
            )
        return cls(
            np.asarray(data["reads"], dtype=np.int64),
            np.asarray(data["writes"], dtype=np.int64),
            data.get("object_names"),
        )

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessPattern):
            return NotImplemented
        return (
            np.array_equal(self._reads, other._reads)
            and np.array_equal(self._writes, other._writes)
            and self._object_names == other._object_names
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AccessPattern(n_nodes={self.n_nodes}, n_objects={self.n_objects}, "
            f"total_reads={int(self._reads.sum())}, total_writes={int(self._writes.sum())})"
        )
