"""Distributed substrate: synchronous tree simulator, aggregation protocols,
distributed placement strategies and the request-replay router."""

from repro.distributed.engine import Message, NodeProcess, RoundStats, TreeSimulator
from repro.distributed.aggregation import (
    AggregationOutcome,
    convergecast,
    downcast,
    pipelined_convergecast,
)
from repro.distributed.protocols import (
    DistributedNibbleReport,
    DistributedRunReport,
    distributed_extended_nibble,
    distributed_nibble,
)
from repro.distributed.request_sim import ReplayResult, replay_requests

__all__ = [
    "Message",
    "NodeProcess",
    "RoundStats",
    "TreeSimulator",
    "AggregationOutcome",
    "convergecast",
    "downcast",
    "pipelined_convergecast",
    "DistributedNibbleReport",
    "DistributedRunReport",
    "distributed_nibble",
    "distributed_extended_nibble",
    "ReplayResult",
    "replay_requests",
]
