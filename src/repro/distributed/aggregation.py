"""Convergecast / broadcast building blocks on the tree simulator.

The distributed versions of the nibble and extended-nibble strategies only
need two communication patterns:

* **convergecast** (bottom-up aggregation): every node combines values from
  its children's subtrees and forwards the partial aggregate to its parent;
  after ``height(T)`` rounds the root knows the aggregate of the whole tree
  and, more importantly for the nibble strategy, every node knows the
  aggregate of its own subtree;
* **broadcast / downcast** (top-down): the root pushes a value (or each node
  pushes a per-child value) towards the leaves in ``height(T)`` rounds.

:func:`convergecast` and :func:`downcast` implement single-vector versions
on the :class:`~repro.distributed.engine.TreeSimulator`;
:func:`pipelined_convergecast` processes ``|X|`` independent value vectors
back to back, demonstrating the pipelining the paper uses to obtain the
``O(|X| + height(T))``-style round bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


from repro.distributed.engine import Message, NodeProcess, RoundStats, TreeSimulator
from repro.errors import SimulationError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "AggregationOutcome",
    "convergecast",
    "downcast",
    "pipelined_convergecast",
]


@dataclass(frozen=True)
class AggregationOutcome:
    """Result of a distributed aggregation run."""

    values: Dict[int, object]
    stats: RoundStats


class _ConvergecastProcess(NodeProcess):
    """Waits for all children, combines, forwards to the parent."""

    def __init__(
        self,
        node: int,
        rooted: RootedTree,
        local_value: object,
        combine: Callable[[object, object], object],
    ) -> None:
        super().__init__(node)
        self.rooted = rooted
        self.combine = combine
        self.aggregate = local_value
        self.pending = set(rooted.children(node))
        self.sent = False

    def on_start(self, ctx: TreeSimulator):
        return self._maybe_send()

    def _maybe_send(self):
        if self.pending or self.sent:
            return ()
        parent = self.rooted.parent(self.node)
        self.sent = True
        if parent < 0:
            return ()
        return (Message(self.node, parent, self.aggregate),)

    def on_round(self, ctx: TreeSimulator, inbox: Sequence[Message]):
        for msg in inbox:
            if msg.src not in self.pending:
                raise SimulationError(
                    f"node {self.node} received an unexpected message from {msg.src}"
                )
            self.pending.discard(msg.src)
            self.aggregate = self.combine(self.aggregate, msg.payload)
        return self._maybe_send()

    def is_done(self, ctx: TreeSimulator) -> bool:
        return self.sent or (not self.pending and self.rooted.parent(self.node) < 0)


def convergecast(
    network: HierarchicalBusNetwork,
    local_values: Dict[int, object],
    combine: Callable[[object, object], object],
    root: Optional[int] = None,
) -> AggregationOutcome:
    """Aggregate per-node values bottom-up.

    Returns, per node, the aggregate over its maximal subtree ``T(v)`` (for
    the chosen root) together with the round statistics.  The number of
    rounds equals the height of the tree plus one bookkeeping round.
    """
    rooted = network.rooted(root)
    processes = {
        node: _ConvergecastProcess(node, rooted, local_values.get(node), combine)
        for node in network.nodes()
    }
    sim = TreeSimulator(network, processes)
    stats = sim.run()
    values = {node: processes[node].aggregate for node in network.nodes()}
    return AggregationOutcome(values=values, stats=stats)


class _DowncastProcess(NodeProcess):
    """Forwards a value from the root towards the leaves."""

    def __init__(
        self,
        node: int,
        rooted: RootedTree,
        root_value: object,
        transform: Callable[[int, int, object], object],
    ) -> None:
        super().__init__(node)
        self.rooted = rooted
        self.transform = transform
        self.value = root_value if rooted.parent(node) < 0 else None
        self.forwarded = False

    def _forward(self):
        if self.value is None or self.forwarded:
            return ()
        self.forwarded = True
        out = []
        for child in self.rooted.children(self.node):
            out.append(
                Message(self.node, child, self.transform(self.node, child, self.value))
            )
        return out

    def on_start(self, ctx: TreeSimulator):
        return self._forward()

    def on_round(self, ctx: TreeSimulator, inbox: Sequence[Message]):
        for msg in inbox:
            self.value = msg.payload
        return self._forward()

    def is_done(self, ctx: TreeSimulator) -> bool:
        return self.forwarded or not self.rooted.children(self.node)


def downcast(
    network: HierarchicalBusNetwork,
    root_value: object,
    transform: Optional[Callable[[int, int, object], object]] = None,
    root: Optional[int] = None,
) -> AggregationOutcome:
    """Broadcast a value from the root to every node (top-down).

    ``transform(parent, child, value)`` may modify the value per child edge
    (identity by default); the returned ``values`` map each node to the value
    it received.
    """
    if transform is None:
        transform = lambda _parent, _child, value: value  # noqa: E731
    rooted = network.rooted(root)
    processes = {
        node: _DowncastProcess(node, rooted, root_value, transform)
        for node in network.nodes()
    }
    sim = TreeSimulator(network, processes)
    stats = sim.run()
    values = {node: processes[node].value for node in network.nodes()}
    return AggregationOutcome(values=values, stats=stats)


class _PipelinedConvergecastProcess(NodeProcess):
    """Convergecast of many independent items, one new item per round."""

    def __init__(
        self,
        node: int,
        rooted: RootedTree,
        local_vectors: Sequence[int],
        n_items: int,
    ) -> None:
        super().__init__(node)
        self.rooted = rooted
        self.n_items = n_items
        self.aggregates: List[int] = list(local_vectors)
        self.received: Dict[int, int] = {}  # item -> number of children heard from
        self.n_children = len(rooted.children(node))
        self.sent_items = 0

    def _ready(self, item: int) -> bool:
        return self.received.get(item, 0) == self.n_children

    def _emit(self) -> List[Message]:
        out: List[Message] = []
        parent = self.rooted.parent(self.node)
        # Send at most one item per round (pipelining): the smallest ready,
        # unsent item.
        while self.sent_items < self.n_items and self._ready(self.sent_items):
            if parent < 0:
                self.sent_items += 1
                continue
            out.append(
                Message(
                    self.node,
                    parent,
                    (self.sent_items, self.aggregates[self.sent_items]),
                )
            )
            self.sent_items += 1
            break
        return out

    def on_start(self, ctx: TreeSimulator):
        if self.n_children == 0:
            return self._emit()
        return ()

    def on_round(self, ctx: TreeSimulator, inbox: Sequence[Message]):
        for msg in inbox:
            item, value = msg.payload
            self.aggregates[item] += value
            self.received[item] = self.received.get(item, 0) + 1
        return self._emit()

    def is_done(self, ctx: TreeSimulator) -> bool:
        return self.sent_items >= self.n_items


def pipelined_convergecast(
    network: HierarchicalBusNetwork,
    local_vectors: Dict[int, Sequence[int]],
    root: Optional[int] = None,
) -> AggregationOutcome:
    """Convergecast ``n_items`` integer values per node, pipelined.

    Each node starts with a vector of ``n_items`` integers; the outcome maps
    every node to the vector of subtree sums.  Thanks to pipelining the
    total round count grows as ``O(n_items + height(T))`` rather than
    ``O(n_items · height(T))`` -- the behaviour experiment E7 measures.
    """
    rooted = network.rooted(root)
    n_items = None
    for node in network.nodes():
        vec = local_vectors.get(node)
        if vec is None:
            raise SimulationError(f"missing local vector for node {node}")
        if n_items is None:
            n_items = len(vec)
        elif len(vec) != n_items:
            raise SimulationError("all local vectors must have the same length")
    assert n_items is not None
    processes = {
        node: _PipelinedConvergecastProcess(
            node, rooted, list(local_vectors[node]), n_items
        )
        for node in network.nodes()
    }
    sim = TreeSimulator(network, processes)
    stats = sim.run()
    values = {node: list(processes[node].aggregates) for node in network.nodes()}
    return AggregationOutcome(values=values, stats=stats)
