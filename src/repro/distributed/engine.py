"""Round-based message-passing simulator for tree networks.

The paper claims that the extended-nibble strategy "can be executed in a
distributed fashion on the tree consuming time
``O(|X|·|P ∪ B|·log(degree(T)) + height(T))``".  To measure such round
counts without hardware we simulate a synchronous message-passing system on
the tree:

* computation proceeds in **rounds**;
* in every round each node reads the messages delivered to it in the
  previous round, performs local computation, and sends messages to
  neighbours;
* messages sent in round ``t`` are delivered at the beginning of round
  ``t + 1``;
* the engine records, per round and per edge, how many messages crossed the
  edge, which yields the communication-load statistics used by experiment
  E7.

Node behaviour is supplied as a :class:`NodeProcess` subclass (or any object
with the same interface).  The engine is deliberately simple -- the
algorithms of the paper only need convergecast/broadcast patterns -- but it
is a general synchronous simulator and is reused by the request-replay
simulator in :mod:`repro.distributed.request_sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence


from repro.errors import SimulationError
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["Message", "NodeProcess", "RoundStats", "TreeSimulator"]


@dataclass(frozen=True)
class Message:
    """A message in flight between two adjacent nodes.

    Attributes
    ----------
    src, dst:
        Sending and receiving node (must be adjacent in the tree).
    payload:
        Arbitrary payload.
    size:
        Abstract size in "units"; counts towards the per-edge traffic.
    """

    src: int
    dst: int
    payload: Any
    size: int = 1


class NodeProcess:
    """Behaviour of a single node in the synchronous simulation.

    Subclasses override :meth:`on_round`; the default implementation does
    nothing.  A node signals that it has finished by returning ``True`` from
    :meth:`is_done`; the simulation stops when every node is done and no
    message is in flight.
    """

    def __init__(self, node: int) -> None:
        self.node = node

    def on_start(self, ctx: "TreeSimulator") -> Iterable[Message]:
        """Called once before round 0; may emit initial messages."""
        return ()

    def on_round(
        self, ctx: "TreeSimulator", inbox: Sequence[Message]
    ) -> Iterable[Message]:
        """Process the inbox of this round and return messages to send."""
        return ()

    def is_done(self, ctx: "TreeSimulator") -> bool:
        """Whether this node has finished its part of the protocol."""
        return True


@dataclass
class RoundStats:
    """Statistics collected by a simulation run."""

    rounds: int = 0
    total_messages: int = 0
    total_units: int = 0
    per_edge_units: Dict[int, int] = field(default_factory=dict)
    max_inbox: int = 0

    def edge_units(self, edge_id: int) -> int:
        """Units of traffic that crossed the given edge."""
        return self.per_edge_units.get(edge_id, 0)

    @property
    def max_edge_units(self) -> int:
        """Maximum traffic over any single edge."""
        return max(self.per_edge_units.values(), default=0)


class TreeSimulator:
    """Synchronous round-based simulator on a hierarchical bus network."""

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        processes: Dict[int, NodeProcess],
    ) -> None:
        self.network = network
        for node in network.nodes():
            if node not in processes:
                raise SimulationError(f"no process registered for node {node}")
        self.processes = processes
        self.stats = RoundStats()
        self._in_flight: List[Message] = []
        self._round = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @property
    def round_number(self) -> int:
        """The current round (0 before the first round executes)."""
        return self._round

    def _record(self, msg: Message) -> None:
        if not self.network.has_edge(msg.src, msg.dst):
            raise SimulationError(
                f"node {msg.src} tried to message non-neighbour {msg.dst}"
            )
        eid = self.network.edge_id(msg.src, msg.dst)
        self.stats.total_messages += 1
        self.stats.total_units += msg.size
        self.stats.per_edge_units[eid] = self.stats.per_edge_units.get(eid, 0) + msg.size

    def run(self, max_rounds: int = 100_000) -> RoundStats:
        """Run until quiescence (all processes done, no messages in flight)."""
        # start-up messages
        for node in self.network.nodes():
            for msg in self.processes[node].on_start(self):
                self._record(msg)
                self._in_flight.append(msg)

        while self._round < max_rounds:
            all_done = all(
                self.processes[node].is_done(self) for node in self.network.nodes()
            )
            if all_done and not self._in_flight:
                break
            inboxes: Dict[int, List[Message]] = {}
            for msg in self._in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
            self._in_flight = []
            self._round += 1
            self.stats.rounds = self._round
            for node in self.network.nodes():
                inbox = inboxes.get(node, [])
                self.stats.max_inbox = max(self.stats.max_inbox, len(inbox))
                for msg in self.processes[node].on_round(self, inbox):
                    self._record(msg)
                    self._in_flight.append(msg)
        else:
            raise SimulationError(
                f"simulation did not terminate within {max_rounds} rounds"
            )
        return self.stats
