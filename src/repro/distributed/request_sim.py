"""Request-replay simulator: from congestion to actual delivery time.

The introduction of the paper motivates congestion as the objective because
routing results show that the delivery time of a batch of messages is
governed by ``congestion + dilation``.  This module closes that loop for the
reproduction: given a placement, it expands the access pattern into actual
request messages (reads, write updates and write broadcasts), routes them
through the tree with a store-and-forward scheduler that respects edge and
bus bandwidths, and reports the resulting makespan.

The makespan can never beat the congestion (every edge can forward at most
``b(e)`` traversals per round, every bus at most ``2·b(B)`` incident
traversals per round), and for tree routing the greedy schedule stays within
a small factor of ``congestion + dilation`` -- the relationship experiment
E8 reports for the different placement strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.loadstate import LoadState
from repro.core.placement import Placement, RequestAssignment
from repro.errors import SimulationError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = ["ReplayResult", "replay_requests"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a request-replay simulation.

    Attributes
    ----------
    makespan:
        Number of rounds until every traversal was delivered.
    total_traversals:
        Total number of (message, edge) traversals scheduled.
    per_edge_traffic:
        Traversals per edge (matches the congestion model's edge loads).
    congestion:
        Max relative edge/bus load implied by ``per_edge_traffic`` -- the
        lower bound on the makespan.
    dilation:
        Longest path (in edges) of any message.
    round_congestion:
        Cumulative congestion of the traffic delivered up to each round
        (length ``makespan``), maintained incrementally by the shared
        :class:`~repro.core.loadstate.LoadState` substrate; the last entry
        equals ``congestion``.
    """

    makespan: int
    total_traversals: int
    per_edge_traffic: np.ndarray
    congestion: float
    dilation: int
    round_congestion: Optional[np.ndarray] = None

    @property
    def slowdown(self) -> float:
        """Makespan divided by the congestion lower bound (>= 1)."""
        if self.congestion <= 0:
            return 1.0
        return self.makespan / self.congestion


@dataclass
class _Traversal:
    """One edge crossing of one message, with a precedence dependency."""

    edge_id: int
    bus_endpoints: Tuple[int, ...]
    predecessor: Optional[int]  # index of the traversal that must finish first
    order: int  # FIFO tie-breaker
    done: bool = False


def _expand_messages(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: RequestAssignment,
    rooted: RootedTree,
    batch: int,
) -> Tuple[List[_Traversal], np.ndarray, int]:
    """Expand the pattern into edge traversals with precedence constraints.

    ``batch`` scales the number of messages down: ``batch = k`` means every
    ``k`` requests of a (processor, object, holder) share are bundled into a
    single message (the per-edge traffic is divided accordingly), which keeps
    the simulation tractable for heavy patterns while preserving the load
    *shape*.
    """
    traversals: List[_Traversal] = []
    per_edge = np.zeros(network.n_edges, dtype=np.float64)
    dilation = 0
    order = 0

    def add_path(path_edges: Sequence[int], endpoints_path: Sequence[int], copies: int) -> None:
        nonlocal order, dilation
        dilation = max(dilation, len(path_edges))
        for _ in range(copies):
            prev_index: Optional[int] = None
            for step, eid in enumerate(path_edges):
                # buses adjacent to this edge constrain its scheduling
                u, v = network.edge_endpoints(eid)
                buses = tuple(b for b in (u, v) if network.is_bus(b))
                traversals.append(
                    _Traversal(
                        edge_id=eid,
                        bus_endpoints=buses,
                        predecessor=prev_index,
                        order=order,
                    )
                )
                prev_index = len(traversals) - 1
                per_edge[eid] += 1
            order += 1

    def add_steiner(edge_ids: Sequence[int], copies: int) -> None:
        nonlocal order, dilation
        # A broadcast crosses every Steiner edge once; edges of a broadcast
        # are independent of each other (the update fans out), so no
        # precedence between them.
        dilation = max(dilation, 1 if edge_ids else 0)
        for _ in range(copies):
            for eid in edge_ids:
                u, v = network.edge_endpoints(eid)
                buses = tuple(b for b in (u, v) if network.is_bus(b))
                traversals.append(
                    _Traversal(
                        edge_id=eid, bus_endpoints=buses, predecessor=None, order=order
                    )
                )
                per_edge[eid] += 1
            order += 1

    for obj in range(pattern.n_objects):
        holders = placement.holders(obj)
        steiner = rooted.steiner_edge_ids(holders) if len(holders) > 1 else []
        total_writes = 0
        for proc in pattern.requesters(obj):
            for share in assignment.shares(proc, obj):
                count = -(-share.total // batch)  # ceil
                path = rooted.path_edge_ids(proc, share.holder)
                add_path(path, (proc, share.holder), count)
                total_writes += share.writes
        if steiner and total_writes > 0:
            add_steiner(steiner, -(-total_writes // batch))
    return traversals, per_edge, dilation


def replay_requests(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    batch: int = 1,
    max_rounds: int = 10_000_000,
) -> ReplayResult:
    """Replay every request of the pattern through a store-and-forward router.

    Parameters
    ----------
    network, pattern, placement:
        The instance and the placement to exercise.
    assignment:
        Optional explicit request assignment (defaults to nearest-copy).
    batch:
        Bundle factor: ``batch`` requests of the same (processor, object,
        holder) share travel as one message.  Keeps large patterns tractable.
    max_rounds:
        Safety limit on the number of simulated rounds.
    """
    if batch < 1:
        raise SimulationError("batch must be a positive integer")
    if assignment is None:
        assignment = RequestAssignment.nearest_copy(network, pattern, placement)
    rooted = network.rooted()
    traversals, per_edge, dilation = _expand_messages(
        network, pattern, placement, assignment, rooted, batch
    )

    from repro.sim.engine import RoundReplayDriver
    from repro.sim.sinks import RoundStatsSink

    # congestion implied by the generated traffic (lower bound on makespan),
    # read off the same incremental substrate the online layer charges into
    total_state = LoadState(network, rooted)
    total_state.apply_edge_loads(per_edge)
    congestion = total_state.congestion

    # The greedy store-and-forward scheduler decides which traversals
    # complete each round; the simulation kernel's round driver owns the
    # substrate charging and the per-round congestion statistics.
    stats = RoundStatsSink()
    driver = RoundReplayDriver(LoadState(network, rooted), sinks=(stats,))
    makespan = driver.run(_schedule_rounds(network, traversals, max_rounds))

    return ReplayResult(
        makespan=makespan,
        total_traversals=len(traversals),
        per_edge_traffic=per_edge,
        congestion=congestion,
        dilation=dilation,
        round_congestion=stats.round_congestion,
    )


def _schedule_rounds(
    network: HierarchicalBusNetwork,
    traversals: List[_Traversal],
    max_rounds: int,
):
    """Greedy bandwidth-respecting schedule, one edge-id batch per round.

    Yields, for every round, the edge ids of the traversals delivered in
    that round (FIFO by message order under per-edge and per-bus capacity
    limits); precedence successors are released as their predecessors
    complete.  The consumer (the kernel's round driver) charges each batch
    into the shared load-state substrate.
    """
    edge_bw = np.asarray(network.edge_bandwidths)
    bus_bw = np.asarray(network.bus_bandwidths)

    # ready queue per edge, FIFO by message order
    pending_by_edge: Dict[int, List[int]] = {e: [] for e in range(network.n_edges)}
    blocked_children: Dict[int, List[int]] = {}
    remaining = 0
    for idx, tr in enumerate(traversals):
        remaining += 1
        if tr.predecessor is None:
            pending_by_edge[tr.edge_id].append(idx)
        else:
            blocked_children.setdefault(tr.predecessor, []).append(idx)
    for queue in pending_by_edge.values():
        queue.sort(key=lambda i: traversals[i].order)

    rounds = 0
    while remaining > 0:
        rounds += 1
        if rounds > max_rounds:
            raise SimulationError("request replay exceeded the round limit")
        edge_capacity = {
            e: int(edge_bw[e]) if edge_bw[e] >= 1 else 1 for e in range(network.n_edges)
        }
        bus_capacity = {
            b: max(1, int(2 * bus_bw[b])) for b in network.buses
        }
        newly_done: List[int] = []
        for eid in range(network.n_edges):
            queue = pending_by_edge[eid]
            if not queue:
                continue
            taken: List[int] = []
            for idx in queue:
                if edge_capacity[eid] <= 0:
                    break
                tr = traversals[idx]
                if any(bus_capacity[b] <= 0 for b in tr.bus_endpoints):
                    continue
                edge_capacity[eid] -= 1
                for b in tr.bus_endpoints:
                    bus_capacity[b] -= 1
                tr.done = True
                taken.append(idx)
                newly_done.append(idx)
            for idx in taken:
                queue.remove(idx)
        if not newly_done:
            # No progress is impossible with positive capacities unless there
            # is nothing pending, which contradicts remaining > 0.
            raise SimulationError("request replay deadlocked")  # pragma: no cover
        remaining -= len(newly_done)
        yield np.fromiter(
            (traversals[i].edge_id for i in newly_done),
            dtype=np.int64,
            count=len(newly_done),
        )
        for idx in newly_done:
            for child in blocked_children.get(idx, ()):  # release successors
                pending_by_edge[traversals[child].edge_id].append(child)
        for idx in newly_done:
            if idx in blocked_children:
                del blocked_children[idx]
        # keep FIFO order stable
        for queue in pending_by_edge.values():
            queue.sort(key=lambda i: traversals[i].order)
