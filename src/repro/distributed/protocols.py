"""Distributed versions of the placement strategies.

The paper states (Theorem 4.3) that the extended-nibble strategy can be
computed "in a distributed fashion on the tree" in time
``O(|X|·|P ∪ B|·log(degree(T)) + height(T))``, with the per-object work
pipelined along the tree.  This module provides:

* :func:`distributed_nibble` -- a faithful message-passing implementation of
  the nibble placement built from pipelined convergecasts and downcasts on
  the :class:`~repro.distributed.engine.TreeSimulator`.  Every node only
  uses information it received through messages; the result is verified to
  equal the sequential :func:`repro.core.nibble.nibble_placement` by the
  test suite.
* :func:`distributed_extended_nibble` -- the full strategy.  The placement
  itself is the sequential one (the algorithm is deterministic, so the
  distributed execution computes the same result); the returned
  :class:`DistributedRunReport` additionally contains the round and message
  counts of a level-synchronous schedule of the deletion and mapping steps,
  derived from the per-level structure of those algorithms.

Both functions return round statistics that experiment E7 sweeps against
``|X|``, ``height(T)`` and ``degree(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.core.extended_nibble import ExtendedNibbleResult, extended_nibble
from repro.core.nibble import NibbleResult
from repro.core.placement import Placement
from repro.distributed.aggregation import (
    convergecast,
    downcast,
    pipelined_convergecast,
)
from repro.distributed.engine import RoundStats
from repro.errors import SimulationError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "DistributedNibbleReport",
    "DistributedRunReport",
    "distributed_nibble",
    "distributed_extended_nibble",
]


@dataclass(frozen=True)
class DistributedNibbleReport:
    """Outcome of the distributed nibble computation."""

    result: NibbleResult
    rounds: int
    messages: int
    message_units: int

    @property
    def placement(self) -> Placement:
        """The computed (tree) placement."""
        return self.result.placement


@dataclass(frozen=True)
class DistributedRunReport:
    """Outcome and cost model of the distributed extended-nibble strategy."""

    result: ExtendedNibbleResult
    nibble_rounds: int
    deletion_rounds: int
    mapping_rounds: int
    total_messages: int

    @property
    def total_rounds(self) -> int:
        """Total number of synchronous rounds of the three phases."""
        return self.nibble_rounds + self.deletion_rounds + self.mapping_rounds


def _merge(stats: Sequence[RoundStats]) -> Tuple[int, int, int]:
    rounds = sum(s.rounds for s in stats)
    messages = sum(s.total_messages for s in stats)
    units = sum(s.total_units for s in stats)
    return rounds, messages, units


def distributed_nibble(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    root: Optional[int] = None,
) -> DistributedNibbleReport:
    """Compute the nibble placement with message passing only.

    The protocol (per object, pipelined across objects):

    1. convergecast of the per-node weights ``h(v)`` and writes ``w(v)``
       (two pipelined convergecasts), giving every node the weight and write
       count of its own subtree for an arbitrary fixed root;
    2. downcast of the per-object totals from the root;
    3. every node decides locally whether it is a gravity-center candidate
       (it knows its children's subtree weights and the total);
    4. convergecast of the minimum candidate id per object and downcast of
       the result, so every node learns the center ``g``;
    5. convergecast of the indicator "the center lies in my subtree", which
       lets every node compute its subtree weight *with respect to the
       center* and apply the placement rule ``h(T_g(v)) > w(T)`` locally.
    """
    pattern.validate_for(network)
    if root is None:
        root = network.canonical_root()
    rooted = network.rooted(root)
    n_objects = pattern.n_objects
    n = network.n_nodes
    stats: List[RoundStats] = []

    if n_objects == 0:
        return DistributedNibbleReport(
            result=NibbleResult(placement=Placement([[root]] * 0), centers=()),
            rounds=0,
            messages=0,
            message_units=0,
        )

    weights = {v: [pattern.accesses_of(v, x) for x in range(n_objects)] for v in range(n)}
    writes = {v: [pattern.writes_of(v, x) for x in range(n_objects)] for v in range(n)}

    # Phase 1: subtree weights / writes for every node (pipelined).
    agg_w = pipelined_convergecast(network, weights, root=root)
    agg_ww = pipelined_convergecast(network, writes, root=root)
    stats.extend([agg_w.stats, agg_ww.stats])
    subtree_weight = agg_w.values  # node -> list over objects
    subtree_writes = agg_ww.values

    # Phase 2: totals live at the root; push them down.
    totals = list(subtree_weight[root])
    total_writes = list(subtree_writes[root])
    down_tot = downcast(network, (totals, total_writes), root=root)
    stats.append(down_tot.stats)

    # Phase 3: local candidate decision; needs children's subtree weights,
    # which the parent saw during the convergecast.
    children_weight: Dict[int, Dict[int, List[int]]] = {
        v: {c: subtree_weight[c] for c in rooted.children(v)} for v in range(n)
    }
    candidate_flags: Dict[int, List[bool]] = {}
    for v in range(n):
        flags = []
        for x in range(n_objects):
            total = totals[x]
            worst = max(
                [children_weight[v][c][x] for c in rooted.children(v)] or [0]
            )
            worst = max(worst, total - subtree_weight[v][x])
            flags.append(worst * 2 <= total)
        candidate_flags[v] = flags

    # Phase 4: minimum candidate id per object (convergecast of min), then
    # downcast so everyone knows the center.
    candidate_ids = {
        v: [v if candidate_flags[v][x] else n for x in range(n_objects)]
        for v in range(n)
    }

    def _vector_min(a, b):
        return [min(p, q) for p, q in zip(a, b)]

    min_cast = convergecast(network, candidate_ids, _vector_min, root=root)
    stats.append(min_cast.stats)
    centers = list(min_cast.values[root])
    if any(c >= n for c in centers):  # pragma: no cover - impossible by the paper
        raise SimulationError("no gravity-center candidate found for some object")
    down_centers = downcast(network, centers, root=root)
    stats.append(down_centers.stats)

    # Phase 5: indicator convergecast -- does my subtree contain the center?
    indicator = {
        v: [1 if v == centers[x] else 0 for x in range(n_objects)] for v in range(n)
    }
    ind_cast = pipelined_convergecast(network, indicator, root=root)
    stats.append(ind_cast.stats)
    contains_center = ind_cast.values

    # Local holder decision: compute the subtree weight w.r.t. the center.
    holders: List[List[int]] = [[] for _ in range(n_objects)]
    for v in range(n):
        for x in range(n_objects):
            g = centers[x]
            if v == g:
                holders[x].append(v)
                continue
            if contains_center[v][x] == 0:
                # center outside my subtree: subtree w.r.t. g == subtree w.r.t. root
                weight_g = subtree_weight[v][x]
            else:
                # center below me, through exactly one child: everything
                # except that child's subtree belongs to T_g(v)
                child_star = None
                for c in rooted.children(v):
                    if contains_center[c][x] or c == g:
                        child_star = c
                        break
                if child_star is None:  # pragma: no cover - defensive
                    raise SimulationError("center indicator inconsistent")
                weight_g = totals[x] - children_weight[v][child_star][x]
            if weight_g > total_writes[x]:
                holders[x].append(v)

    result = NibbleResult(
        placement=Placement(holders), centers=tuple(int(c) for c in centers)
    )
    rounds, messages, units = _merge(stats)
    return DistributedNibbleReport(
        result=result, rounds=rounds, messages=messages, message_units=units
    )


def distributed_extended_nibble(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    root: Optional[int] = None,
) -> DistributedRunReport:
    """Distributed extended-nibble: placement plus round/message cost model.

    The nibble phase is executed with real message passing
    (:func:`distributed_nibble`).  The deletion and mapping phases are
    level-synchronous by construction -- round ``l`` of the deletion touches
    exactly the level-``l`` copies of ``T(x)``, and each of the two mapping
    phases sweeps the levels of ``T`` once -- so their round counts follow
    directly from the algorithm structure: ``height(T(x))`` rounds per
    object (pipelined over objects) for the deletion and ``2·height(T)``
    rounds for the mapping, with one message per copy movement and one per
    reassigned request bundle.
    """
    dist_nib = distributed_nibble(network, pattern, root=root)
    seq = extended_nibble(network, pattern, root=root)

    # The distributed nibble must agree with the sequential step 1.
    if dist_nib.result.placement != seq.nibble.placement:  # pragma: no cover
        raise SimulationError(
            "distributed nibble disagrees with the sequential nibble placement"
        )

    rooted = network.rooted(root if root is not None else network.canonical_root())
    height = rooted.height

    # Deletion: one round per level of the largest copy subtree, pipelined
    # over objects (one extra round per additional object).
    max_subtree_height = 0
    deletion_messages = 0
    for obj in range(pattern.n_objects):
        holders = seq.nibble.placement.holders(obj)
        if len(holders) <= 1:
            continue
        depths = [rooted.depth(h) for h in holders]
        max_subtree_height = max(max_subtree_height, max(depths) - min(depths))
        # every deleted copy forwards one reassignment message
        deletion_messages += max(0, len(holders) - len(seq.modified_copies[obj].copies))
    deletion_rounds = max_subtree_height + max(0, pattern.n_objects - 1)

    # Mapping: an upwards sweep and a downwards sweep over the levels of T,
    # one message per copy movement.
    mapping_rounds = 2 * height if seq.mapping.affected_objects else 0
    mapping_messages = seq.mapping.moves_up + seq.mapping.moves_down

    total_messages = dist_nib.messages + deletion_messages + mapping_messages
    return DistributedRunReport(
        result=seq,
        nibble_rounds=dist_nib.rounds,
        deletion_rounds=deletion_rounds,
        mapping_rounds=mapping_rounds,
        total_messages=total_messages,
    )
