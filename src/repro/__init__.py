"""repro -- reproduction of "Data Management in Hierarchical Bus Networks".

F. Meyer auf der Heide, H. Räcke, M. Westermann, SPAA 2000.

The package implements the paper's static data management problem on
hierarchical bus networks (trees whose leaves are processors and whose inner
nodes are buses), including:

* the network and workload model (:mod:`repro.network`, :mod:`repro.workload`),
* the congestion cost model (:mod:`repro.core.congestion`),
* the nibble baseline and the paper's extended-nibble 7-approximation
  (:mod:`repro.core`),
* the NP-hardness reduction from PARTITION (:mod:`repro.hardness`),
* a distributed round-based simulator (:mod:`repro.distributed`), and
* analysis / experiment harnesses (:mod:`repro.analysis`).

Quick start
-----------
>>> from repro.network import balanced_tree
>>> from repro.workload import zipf_pattern
>>> from repro.core import extended_nibble, nibble_lower_bound
>>> net = balanced_tree(arity=2, depth=3, leaves_per_bus=2)
>>> pattern = zipf_pattern(net, n_objects=16, seed=0)
>>> result = extended_nibble(net, pattern)
>>> result.congestion(net, pattern) <= 7 * max(nibble_lower_bound(net, pattern), 1e-9)
True
"""

from repro.version import PAPER, __version__, version_info

__all__ = ["__version__", "PAPER", "version_info"]
