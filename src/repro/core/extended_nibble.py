"""The extended-nibble strategy (Section 3) -- the paper's main contribution.

The strategy composes three steps:

1. **nibble** (:mod:`repro.core.nibble`): an optimal placement that may use
   buses as copy holders;
2. **deletion** (:mod:`repro.core.deletion`): remove copies serving fewer
   than ``κ_x`` requests and split overloaded copies, so every copy serves
   between ``κ_x`` and ``2κ_x`` requests;
3. **mapping** (:mod:`repro.core.mapping`): relocate the remaining bus
   copies to processors with bounded forwarding load.

Theorem 4.3: the resulting leaf-only placement has congestion at most
``7 · C_opt``, and the sequential runtime is
``O(|X| · |P ∪ B| · height(T) · log(degree(T)))``.

:func:`extended_nibble` runs the full pipeline and returns an
:class:`ExtendedNibbleResult` carrying the final placement, the exact
request assignment, intermediate artefacts and step timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.congestion import LoadProfile, compute_loads
from repro.core.deletion import ObjectCopies, apply_deletion, copies_to_placement
from repro.core.mapping import MappingResult, map_copies_to_leaves
from repro.core.nibble import NibbleResult, nibble_placement
from repro.core.placement import Placement, RequestAssignment
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = ["ExtendedNibbleResult", "StepTimings", "extended_nibble"]


@dataclass(frozen=True)
class StepTimings:
    """Wall-clock seconds spent in each step of the strategy."""

    nibble: float
    deletion: float
    mapping: float

    @property
    def total(self) -> float:
        """Total time over the three steps."""
        return self.nibble + self.deletion + self.mapping


@dataclass(frozen=True)
class ExtendedNibbleResult:
    """Complete output of the extended-nibble strategy.

    Attributes
    ----------
    placement:
        The final leaf-only placement (holders are processors only).
    assignment:
        Exact request-to-copy assignment produced by the strategy; using it
        with :func:`repro.core.congestion.compute_loads` reproduces the
        congestion the strategy is charged with.
    nibble:
        The step-1 nibble result (tree placement and gravity centers).
    modified_copies:
        Per-object copy records after the deletion step (their ``node``
        fields reflect the final, post-mapping locations).
    mapping:
        Diagnostics of the mapping step.
    timings:
        Wall-clock timings of the three steps.
    """

    placement: Placement
    assignment: RequestAssignment
    nibble: NibbleResult
    modified_copies: Tuple[ObjectCopies, ...]
    mapping: MappingResult
    timings: StepTimings

    def loads(
        self, network: HierarchicalBusNetwork, pattern: AccessPattern
    ) -> LoadProfile:
        """Evaluate the cost model for the final placement and assignment."""
        return compute_loads(
            network, pattern, self.placement, assignment=self.assignment
        )

    def congestion(
        self, network: HierarchicalBusNetwork, pattern: AccessPattern
    ) -> float:
        """Congestion of the final placement."""
        return self.loads(network, pattern).congestion


def _fallback_leaf(
    network: HierarchicalBusNetwork, center: int
) -> int:
    """Leaf used for objects without any requests: closest to the center."""
    if network.is_processor(center):
        return center
    rooted = network.rooted()
    return rooted.nearest_in_set(center, network.processors)


def extended_nibble(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    root: Optional[int] = None,
    validate: bool = True,
) -> ExtendedNibbleResult:
    """Run the extended-nibble strategy on an instance.

    Parameters
    ----------
    network, pattern:
        The hierarchical bus network and the read/write frequencies.
    root:
        Root used by the mapping step (defaults to the canonical root; the
        choice does not affect the approximation guarantee).
    validate:
        If true (default), validate inputs and the final placement.

    Returns
    -------
    ExtendedNibbleResult
    """
    if validate:
        pattern.validate_for(network)

    t0 = time.perf_counter()
    nib = nibble_placement(network, pattern)
    t1 = time.perf_counter()
    copies = apply_deletion(network, pattern, nib.placement)
    # Objects without any requests carry no load; drop their (single,
    # possibly bus-located) copy here and re-add a leaf holder below, so the
    # mapping step only ever deals with copies that serve requests.
    for obj in range(pattern.n_objects):
        if pattern.is_trivial(obj):
            copies[obj].copies.clear()
    t2 = time.perf_counter()
    mapping = map_copies_to_leaves(network, copies, root=root)
    t3 = time.perf_counter()

    # Objects without requests keep a single copy on the leaf closest to
    # their gravity center (they induce no load, but every object must have
    # at least one holder).
    fallback = [
        _fallback_leaf(network, nib.centers[obj]) for obj in range(pattern.n_objects)
    ]
    placement, assignment = copies_to_placement(copies, pattern, fallback_holders=fallback)

    # Copies of *unaffected* read-only objects that the deletion step kept on
    # a bus cannot occur (pruning removes unused bus copies); still, guard the
    # model invariant before returning.
    if validate:
        placement.validate_for(network, pattern, require_leaf_only=True)
        assignment.validate_for(network, pattern, placement)

    timings = StepTimings(nibble=t1 - t0, deletion=t2 - t1, mapping=t3 - t2)
    return ExtendedNibbleResult(
        placement=placement,
        assignment=assignment,
        nibble=nib,
        modified_copies=tuple(copies),
        mapping=mapping,
        timings=timings,
    )
