"""Numba ``@njit`` twins of the compiled kernel loops.

Importing this module requires ``numba`` (the optional ``[compiled]``
extra); :mod:`repro.core.kernels` imports it lazily and treats an
``ImportError`` as "backend unavailable".  Every function mirrors the C
implementation embedded in :mod:`repro.core.kernels` loop for loop, and
``fastmath`` stays **off** so float additions keep IEEE semantics -- the
bit-for-bit "compiled equals reference" invariant (ARCHITECTURE.md
invariant 9) depends on it.  The differential suite pins these against
the numpy ``_reference_*`` twins whenever numba is installed.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["OPS"]

_jit = njit(cache=True, fastmath=False)


@_jit
def _nb_lca(up, depth, u, v):
    levels, n = up.shape
    m = u.size
    out = np.empty(m, dtype=np.int64)
    for i in range(m):
        a = u[i]
        b = v[i]
        da = depth[a]
        db = depth[b]
        if da < db:
            a, b = b, a
            da, db = db, da
        diff = da - db
        k = 0
        while diff != 0:
            if diff & 1:
                a = up[k, a]
            diff >>= 1
            k += 1
        if a != b:
            for k in range(levels - 1, -1, -1):
                ua = up[k, a]
                ub = up[k, b]
                if ua != ub:
                    a = ua
                    b = ub
            a = up[0, a]
        out[i] = a
    return out


# Zero-skip CSR scatter (see the C twins in repro.core.kernels for why
# skipping all-zero delta rows is bitwise-identical to the full scatter).
@_jit
def _nb_scatter_paths_1d(out, rp_edges, rp_indptr, delta):
    for v in range(rp_indptr.size - 1):
        d = delta[v]
        if d != 0.0:
            for t in range(rp_indptr[v], rp_indptr[v + 1]):
                out[rp_edges[t]] += d


@_jit
def _nb_scatter_paths_2d(out, rp_edges, rp_indptr, delta):
    ncols = out.shape[1]
    for v in range(rp_indptr.size - 1):
        nonzero = False
        for c in range(ncols):
            if delta[v, c] != 0.0:
                nonzero = True
                break
        if nonzero:
            for t in range(rp_indptr[v], rp_indptr[v + 1]):
                e = rp_edges[t]
                for c in range(ncols):
                    out[e, c] += delta[v, c]


@_jit
def _nb_pair_scatter(delta, u, v, anc, w):
    for i in range(u.size):
        delta[u[i]] += w[i]
        delta[v[i]] += w[i]
        delta[anc[i]] -= 2.0 * w[i]


@_jit
def _nb_pair_scatter_lanes(delta, u, targets, anc, w):
    m, lanes = targets.shape
    for i in range(m):
        wi = w[i]
        w2 = 2.0 * wi
        ui = u[i]
        for k in range(lanes):
            delta[ui, k] += wi
            delta[targets[i, k], k] += wi
            delta[anc[i, k], k] -= w2
    return delta


@_jit
def _nb_bus_fold_1d(out, edge_u, edge_v, is_bus, vec):
    for e in range(edge_u.size):
        out[edge_u[e]] += vec[e]
        out[edge_v[e]] += vec[e]
    for i in range(out.shape[0]):
        if not is_bus[i]:
            out[i] = 0.0


@_jit
def _nb_bus_fold_2d(out, edge_u, edge_v, is_bus, vec):
    ncols = out.shape[1]
    for e in range(edge_u.size):
        bu = edge_u[e]
        bv = edge_v[e]
        for c in range(ncols):
            out[bu, c] += vec[e, c]
            out[bv, c] += vec[e, c]
    for i in range(out.shape[0]):
        if not is_bus[i]:
            for c in range(ncols):
                out[i, c] = 0.0


@_jit
def _nb_apply_column(loads, vec, edge_u, edge_v, is_bus, n_edges, sign):
    # x == 0.0 entries skip the adds (same zero-skip argument as the CSR
    # scatter: the accumulator holds no -0.0, so +/- (+/-)0.0 is a no-op
    # and (+/-)0.0 >= 0 keeps the flag unchanged)
    any_neg = False
    if sign >= 0.0:
        for e in range(n_edges):
            x = vec[e]
            if not (x >= 0.0):
                any_neg = True
            if x != 0.0:
                loads[e] += x
                if is_bus[edge_u[e]]:
                    loads[n_edges + edge_u[e]] += x
                if is_bus[edge_v[e]]:
                    loads[n_edges + edge_v[e]] += x
    else:
        for e in range(n_edges):
            x = vec[e]
            if not (x >= 0.0):
                any_neg = True
            if x != 0.0:
                loads[e] -= x
                if is_bus[edge_u[e]]:
                    loads[n_edges + edge_u[e]] -= x
                if is_bus[edge_v[e]]:
                    loads[n_edges + edge_v[e]] -= x
    return any_neg


@_jit
def _nb_apply_columns_lanes(loads, lanes, cols, edge_u, edge_v, is_bus, n_edges):
    n_lanes = lanes.size
    neg = np.zeros(n_lanes, dtype=np.bool_)
    for j in range(n_lanes):
        row = lanes[j]
        for e in range(n_edges):
            x = cols[e, j]
            if not (x >= 0.0):
                neg[j] = True
            loads[row, e] += x
            if is_bus[edge_u[e]]:
                loads[row, n_edges + edge_u[e]] += x
            if is_bus[edge_v[e]]:
                loads[row, n_edges + edge_v[e]] += x
    return neg


@_jit
def _nb_rescan(loads, denom):
    best = loads[0] / denom[0]
    for i in range(1, loads.size):
        v = loads[i] / denom[i]
        if v > best:
            best = v
    return best


@_jit
def _nb_rescan_rows(loads, rows, denom):
    out = np.empty(rows.size, dtype=np.float64)
    row_len = loads.shape[1]
    for j in range(rows.size):
        r = rows[j]
        best = loads[r, 0] / denom[0]
        for i in range(1, row_len):
            v = loads[r, i] / denom[i]
            if v > best:
                best = v
        out[j] = best
    return out


def _scatter_paths(out, rp_edges, rp_nodes, rp_indptr, delta):
    if out.ndim == 1:
        _nb_scatter_paths_1d(out, rp_edges, rp_indptr, delta)
    else:
        _nb_scatter_paths_2d(out, rp_edges, rp_indptr, delta)


def _pair_scatter_lanes(delta, u, targets, anc, w):
    _nb_pair_scatter_lanes(delta, u, targets, anc, w)


def _bus_fold(out, edge_u, edge_v, is_bus, vec):
    if out.ndim == 1:
        _nb_bus_fold_1d(out, edge_u, edge_v, is_bus, vec)
    else:
        _nb_bus_fold_2d(out, edge_u, edge_v, is_bus, vec)


def _apply_column(loads, vec, edge_u, edge_v, is_bus, n_edges, sign):
    return bool(_nb_apply_column(loads, vec, edge_u, edge_v, is_bus, n_edges, sign))


def _rescan(loads, denom):
    return float(_nb_rescan(loads, denom))


OPS = {
    "lca": _nb_lca,
    "scatter_paths": _scatter_paths,
    "pair_scatter": _nb_pair_scatter,
    "pair_scatter_lanes": _pair_scatter_lanes,
    "bus_fold": _bus_fold,
    "apply_column": _apply_column,
    "apply_columns_lanes": _nb_apply_columns_lanes,
    "rescan": _rescan,
    "rescan_rows": _nb_rescan_rows,
}
