"""Baseline placement strategies.

The paper has no experimental section, but its introduction argues that
congestion-oriented placement beats simpler policies.  The benchmark
harness therefore compares the extended-nibble strategy against the natural
baselines a practitioner would try first:

* :func:`owner_placement` -- each object lives on the processor issuing the
  most requests to it ("first-touch/owner computes").
* :func:`median_leaf_placement` -- each object lives on the processor
  minimising that object's *total* communication load (the weighted median
  of its requesters projected onto the leaves); this is the classic
  total-load heuristic the related-work section contrasts with congestion.
* :func:`greedy_congestion_placement` -- objects are placed one by one
  (heaviest first) on the leaf that minimises the congestion accumulated so
  far.
* :func:`random_placement` -- each object on a uniformly random leaf.
* :func:`full_replication_placement` -- every processor holds every object.

All baselines are non-redundant except full replication, and all return a
plain :class:`~repro.core.placement.Placement` evaluated with the standard
nearest-copy assignment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "owner_placement",
    "median_leaf_placement",
    "greedy_congestion_placement",
    "random_placement",
    "full_replication_placement",
]


def _check(network: HierarchicalBusNetwork, pattern: AccessPattern) -> List[int]:
    pattern.validate_for(network)
    procs = list(network.processors)
    if not procs:
        raise PlacementError("the network has no processors to place copies on")
    return procs


def owner_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Place each object on the processor with the most accesses to it.

    Ties are broken towards the smallest processor id; objects nobody
    accesses go to the smallest processor.
    """
    procs = _check(network, pattern)
    procs_arr = np.asarray(procs, dtype=np.int64)
    # argmax returns the first maximum, i.e. the smallest processor id
    best_rows = np.argmax(pattern.totals[procs_arr, :], axis=0)
    return Placement.single_holder(procs_arr[best_rows].tolist())


def median_leaf_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Place each object on the leaf minimising its total communication load.

    For a single copy on leaf ``l`` the total load of object ``x`` is
    ``Σ_P h(P,x) · dist(P, l)`` (every request travels to ``l``; the write
    broadcast is free for a single copy).  The minimiser is the weighted
    median of the requesters restricted to the leaves.  This baseline
    represents total-load-oriented data management.
    """
    procs = _check(network, pattern)
    pm = network.rooted().path_matrix()
    procs_arr = np.asarray(procs, dtype=np.int64)
    totals = pattern.totals
    holders = []
    for obj in range(pattern.n_objects):
        requesters = np.asarray(pattern.requesters(obj), dtype=np.int64)
        if requesters.size == 0:
            holders.append(procs[0])
            continue
        dist = pm.distances(requesters[:, None], procs_arr[None, :])
        costs = totals[requesters, obj] @ dist
        # argmin returns the first minimum, i.e. the smallest leaf id
        holders.append(int(procs_arr[np.argmin(costs)]))
    return Placement.single_holder(holders)


def greedy_congestion_placement(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    object_order: Optional[Sequence[int]] = None,
) -> Placement:
    """Greedy congestion-aware placement.

    Objects are processed in decreasing total-request order (or the given
    order) and each is placed on the leaf that minimises the maximum
    relative edge/bus load accumulated so far.
    """
    procs = _check(network, pattern)
    pm = network.rooted().path_matrix()
    if object_order is None:
        totals = pattern.total_requests_all()
        object_order = sorted(
            range(pattern.n_objects), key=lambda x: (-int(totals[x]), x)
        )

    procs_arr = np.asarray(procs, dtype=np.int64)
    n_leaves = procs_arr.size
    edge_bw = np.asarray(network.edge_bandwidths)
    bus_bw = np.asarray(network.bus_bandwidths)
    all_totals = pattern.totals

    edge_loads = np.zeros(network.n_edges, dtype=np.float64)
    chosen = [procs[0]] * pattern.n_objects

    # For every object, evaluate all candidate leaves in one batched column
    # computation: the per-leaf load vectors of a single copy (path loads
    # only; no Steiner tree for a single copy) become columns of one matrix.
    for obj in object_order:
        requesters = np.asarray(pattern.requesters(obj), dtype=np.int64)
        if requesters.size == 0:
            chosen[obj] = procs[0]
            continue
        counts = all_totals[requesters, obj].astype(np.float64)
        lcas = pm.lca(requesters[:, None], procs_arr[None, :])
        delta = np.zeros((network.n_nodes, n_leaves), dtype=np.float64)
        delta[requesters, :] += counts[:, None]
        np.add.at(delta, (procs_arr, np.arange(n_leaves)), counts.sum())
        cols = np.broadcast_to(np.arange(n_leaves), lcas.shape)
        np.add.at(delta, (lcas, cols), np.broadcast_to(-2.0 * counts[:, None], lcas.shape))
        leaf_loads = pm.edge_loads_from_deltas(delta)

        trials = edge_loads[:, None] + leaf_loads
        scores = (trials / edge_bw[:, None]).max(axis=0) if trials.size else np.zeros(n_leaves)
        bus_loads = pm.bus_loads_from_edge_loads(trials)
        scores = np.maximum(scores, (bus_loads / bus_bw[:, None]).max(axis=0))
        # argmin returns the first minimum, i.e. the smallest leaf id on ties
        best = int(np.argmin(scores))
        chosen[obj] = int(procs_arr[best])
        edge_loads += leaf_loads[:, best]
    return Placement.single_holder(chosen)


def random_placement(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> Placement:
    """Each object on a uniformly random processor."""
    procs = _check(network, pattern)
    gen = rng if rng is not None else np.random.default_rng(seed)
    holders = [procs[int(gen.integers(0, len(procs)))] for _ in range(pattern.n_objects)]
    return Placement.single_holder(holders)


def full_replication_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Every processor holds a copy of every object.

    Reads become free, but every write is broadcast over the Steiner tree of
    *all* processors (the whole tree), so write-heavy objects make this
    baseline arbitrarily bad -- the regime
    :func:`repro.workload.adversarial.replication_trap` exercises.
    """
    _check(network, pattern)
    return Placement.full_replication(network, pattern.n_objects)
