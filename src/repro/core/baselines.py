"""Baseline placement strategies.

The paper has no experimental section, but its introduction argues that
congestion-oriented placement beats simpler policies.  The benchmark
harness therefore compares the extended-nibble strategy against the natural
baselines a practitioner would try first:

* :func:`owner_placement` -- each object lives on the processor issuing the
  most requests to it ("first-touch/owner computes").
* :func:`median_leaf_placement` -- each object lives on the processor
  minimising that object's *total* communication load (the weighted median
  of its requesters projected onto the leaves); this is the classic
  total-load heuristic the related-work section contrasts with congestion.
* :func:`greedy_congestion_placement` -- objects are placed one by one
  (heaviest first) on the leaf that minimises the congestion accumulated so
  far.
* :func:`random_placement` -- each object on a uniformly random leaf.
* :func:`full_replication_placement` -- every processor holds every object.

All baselines are non-redundant except full replication, and all return a
plain :class:`~repro.core.placement.Placement` evaluated with the standard
nearest-copy assignment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.congestion import object_edge_loads
from repro.core.placement import Placement, RequestAssignment
from repro.errors import PlacementError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "owner_placement",
    "median_leaf_placement",
    "greedy_congestion_placement",
    "random_placement",
    "full_replication_placement",
]


def _check(network: HierarchicalBusNetwork, pattern: AccessPattern) -> List[int]:
    pattern.validate_for(network)
    procs = list(network.processors)
    if not procs:
        raise PlacementError("the network has no processors to place copies on")
    return procs


def owner_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Place each object on the processor with the most accesses to it.

    Ties are broken towards the smallest processor id; objects nobody
    accesses go to the smallest processor.
    """
    procs = _check(network, pattern)
    totals = pattern.totals
    holders = []
    for obj in range(pattern.n_objects):
        best = procs[0]
        best_count = -1
        for p in procs:
            count = int(totals[p, obj])
            if count > best_count:
                best, best_count = p, count
        holders.append(best)
    return Placement.single_holder(holders)


def median_leaf_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Place each object on the leaf minimising its total communication load.

    For a single copy on leaf ``l`` the total load of object ``x`` is
    ``Σ_P h(P,x) · dist(P, l)`` (every request travels to ``l``; the write
    broadcast is free for a single copy).  The minimiser is the weighted
    median of the requesters restricted to the leaves.  This baseline
    represents total-load-oriented data management.
    """
    procs = _check(network, pattern)
    rooted = network.rooted()
    totals = pattern.totals
    holders = []
    for obj in range(pattern.n_objects):
        requesters = pattern.requesters(obj)
        if not requesters:
            holders.append(procs[0])
            continue
        best, best_cost = None, None
        for leaf in procs:
            cost = sum(
                int(totals[p, obj]) * rooted.distance(p, leaf) for p in requesters
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = leaf, cost
        holders.append(best)
    return Placement.single_holder(holders)


def greedy_congestion_placement(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    object_order: Optional[Sequence[int]] = None,
) -> Placement:
    """Greedy congestion-aware placement.

    Objects are processed in decreasing total-request order (or the given
    order) and each is placed on the leaf that minimises the maximum
    relative edge/bus load accumulated so far.
    """
    procs = _check(network, pattern)
    rooted = network.rooted()
    if object_order is None:
        totals = pattern.total_requests_all()
        object_order = sorted(
            range(pattern.n_objects), key=lambda x: (-int(totals[x]), x)
        )

    edge_bw = np.asarray(network.edge_bandwidths)
    bus_bw = np.asarray(network.bus_bandwidths)
    incident = [list(network.incident_edge_ids(v)) for v in network.nodes()]
    buses = list(network.buses)

    edge_loads = np.zeros(network.n_edges, dtype=np.float64)
    chosen = [procs[0]] * pattern.n_objects

    # Pre-compute, per object and candidate leaf, the per-edge load vector of
    # placing the single copy there (path loads only; no Steiner tree for a
    # single copy).
    for obj in object_order:
        requesters = pattern.requesters(obj)
        if not requesters:
            chosen[obj] = procs[0]
            continue
        best_leaf, best_score = None, None
        for leaf in procs:
            delta = np.zeros(network.n_edges, dtype=np.float64)
            for p in requesters:
                count = pattern.accesses_of(p, obj)
                for eid in rooted.path_edge_ids(p, leaf):
                    delta[eid] += count
            trial = edge_loads + delta
            score = float((trial / edge_bw).max()) if trial.size else 0.0
            for bus in buses:
                bus_load = trial[incident[bus]].sum() / 2.0
                score = max(score, bus_load / bus_bw[bus])
            if best_score is None or score < best_score or (
                score == best_score and leaf < best_leaf
            ):
                best_leaf, best_score = leaf, score
        chosen[obj] = best_leaf
        for p in requesters:
            count = pattern.accesses_of(p, obj)
            for eid in rooted.path_edge_ids(p, best_leaf):
                edge_loads[eid] += count
    return Placement.single_holder(chosen)


def random_placement(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> Placement:
    """Each object on a uniformly random processor."""
    procs = _check(network, pattern)
    gen = rng if rng is not None else np.random.default_rng(seed)
    holders = [procs[int(gen.integers(0, len(procs)))] for _ in range(pattern.n_objects)]
    return Placement.single_holder(holders)


def full_replication_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> Placement:
    """Every processor holds a copy of every object.

    Reads become free, but every write is broadcast over the Steiner tree of
    *all* processors (the whole tree), so write-heavy objects make this
    baseline arbitrarily bad -- the regime
    :func:`repro.workload.adversarial.replication_trap` exercises.
    """
    _check(network, pattern)
    return Placement.full_replication(network, pattern.n_objects)
