"""Step 2: the deletion algorithm -- removing rarely used copies.

After the nibble step every object ``x`` has a connected subtree ``T(x)`` of
copy holders.  The deletion algorithm (Section 3.2, Figure 4) removes copies
that serve fewer than ``κ_x`` requests, reassigning their requests to the
copy on the parent node inside ``T(x)`` (or, for the root of ``T(x)``, to
the nearest surviving copy).  Copies serving more than ``2·κ_x`` requests are
split into several co-located copies so that, in the end, *every copy serves
between ``κ_x`` and ``2·κ_x`` requests* (Observation 3.2).  This bounds the
number of copies per object and bounds the extra load of the later mapping
step.

The module tracks request ownership exactly: every copy records the list of
``(processor, reads, writes)`` portions it serves, which is what the mapping
step and the final placement need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.loadstate import LoadState
from repro.core.placement import Placement, RequestAssignment, Share
from repro.errors import AlgorithmError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "CopyRecord",
    "ObjectCopies",
    "RefinementResult",
    "delete_rarely_used_copies",
    "apply_deletion",
    "copies_to_placement",
    "refine_copies",
]


@dataclass
class CopyRecord:
    """One physical copy of an object and the requests it serves.

    Attributes
    ----------
    obj:
        Object index.
    node:
        Node currently holding the copy (mutated by the mapping step).
    served:
        List of ``(processor, reads, writes)`` portions served by this copy.
    home:
        Node the copy was created on (before any mapping movement).
    """

    obj: int
    node: int
    served: List[Tuple[int, int, int]] = field(default_factory=list)
    home: int = -1

    def __post_init__(self) -> None:
        if self.home < 0:
            self.home = self.node

    @property
    def s(self) -> int:
        """Number of requests served by this copy (``s(c)`` in the paper)."""
        return sum(r + w for (_p, r, w) in self.served)

    def add(self, proc: int, reads: int, writes: int) -> None:
        """Add a served portion (merging with an existing one for the processor)."""
        if reads == 0 and writes == 0:
            return
        for i, (p, r, w) in enumerate(self.served):
            if p == proc:
                self.served[i] = (p, r + reads, w + writes)
                return
        self.served.append((proc, reads, writes))

    def take_all(self) -> List[Tuple[int, int, int]]:
        """Remove and return all served portions."""
        out = self.served
        self.served = []
        return out


@dataclass
class ObjectCopies:
    """All copies of one object after the deletion step."""

    obj: int
    kappa: int
    copies: List[CopyRecord]

    @property
    def holder_nodes(self) -> frozenset:
        """Set of nodes currently holding at least one copy."""
        return frozenset(c.node for c in self.copies)

    @property
    def total_served(self) -> int:
        """Total number of requests served by all copies."""
        return sum(c.s for c in self.copies)

    def has_bus_copy(self, network: HierarchicalBusNetwork) -> bool:
        """True iff at least one copy currently sits on a bus."""
        return any(network.is_bus(c.node) for c in self.copies)


def _induced_subtree_structure(
    rooted: RootedTree, holders: frozenset
) -> Tuple[int, Dict[int, int], Dict[int, int]]:
    """Root the connected holder set and compute parents and depths within it.

    The subtree ``T(x)`` is rooted at its smallest-id node (an arbitrary but
    deterministic choice, as permitted by the paper).  Returns
    ``(root, parent_in_subtree, depth_in_subtree)``.
    """
    root = min(holders)
    parent: Dict[int, int] = {root: -1}
    depth: Dict[int, int] = {root: 0}
    stack = [root]
    seen = {root}
    while stack:
        u = stack.pop()
        for v in rooted.network.neighbors(u):
            if v in holders and v not in seen:
                seen.add(v)
                parent[v] = u
                depth[v] = depth[u] + 1
                stack.append(v)
    if seen != set(holders):
        raise AlgorithmError(
            "holder set is not connected; the nibble placement guarantees "
            "connectivity, so this indicates a malformed input"
        )
    return root, parent, depth


def _split_copy(copy: CopyRecord, kappa: int) -> List[CopyRecord]:
    """Split a copy serving more than ``2·κ`` requests into several copies.

    Every resulting copy serves between ``κ`` and ``2·κ`` requests
    (Observation 3.2).  Portions of a single processor may be divided across
    copies; reads are handed out before writes within a portion.
    """
    s = copy.s
    if kappa <= 0 or s <= 2 * kappa:
        return [copy]
    # number of copies: smallest m with s <= 2*kappa*m; then s >= kappa*m holds
    m = -(-s // (2 * kappa))
    base, extra = divmod(s, m)
    quotas = [base + 1] * extra + [base] * (m - extra)

    pieces: List[Tuple[int, int, int]] = []  # (proc, reads, writes) stream
    for proc, reads, writes in copy.served:
        pieces.append((proc, reads, writes))

    result: List[CopyRecord] = []
    idx = 0
    cur_proc, cur_reads, cur_writes = (None, 0, 0)
    for quota in quotas:
        new_copy = CopyRecord(obj=copy.obj, node=copy.node, home=copy.home)
        need = quota
        while need > 0:
            if cur_reads == 0 and cur_writes == 0:
                cur_proc, cur_reads, cur_writes = pieces[idx]
                idx += 1
            take_reads = min(cur_reads, need)
            cur_reads -= take_reads
            need -= take_reads
            take_writes = min(cur_writes, need)
            cur_writes -= take_writes
            need -= take_writes
            new_copy.add(cur_proc, take_reads, take_writes)
        result.append(new_copy)
    if cur_reads or cur_writes or idx != len(pieces):  # pragma: no cover
        raise AlgorithmError("copy splitting lost requests")
    return result


def delete_rarely_used_copies(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    obj: int,
    holders: frozenset,
    rooted: Optional[RootedTree] = None,
) -> ObjectCopies:
    """Run the deletion algorithm (Figure 4) for a single object.

    Parameters
    ----------
    network, pattern, obj:
        The instance and the object index.
    holders:
        The nibble holder set ``T(x)`` for the object (must be connected).
    rooted:
        Optional rooted view of the network (for nearest-copy queries).

    Returns
    -------
    ObjectCopies
        Surviving copies, each serving between ``κ_x`` and ``2·κ_x``
        requests (when ``κ_x > 0``), with their exact served request
        portions.
    """
    if rooted is None:
        rooted = network.rooted()
    kappa = pattern.write_contention(obj)

    # Initial reference copies: the holder nearest to each requester,
    # resolved for all requesters at once via the path-incidence structure.
    holder_list = sorted(holders)
    copy_at: Dict[int, CopyRecord] = {
        node: CopyRecord(obj=obj, node=node) for node in holder_list
    }
    requesters = np.asarray(pattern.requesters(obj), dtype=np.int64)
    if requesters.size:
        nearest = rooted.path_matrix().nearest_in_set(requesters, holder_list)
        reads = pattern.reads[requesters, obj]
        writes = pattern.writes[requesters, obj]
        for proc, holder, r, w in zip(requesters, nearest, reads, writes):
            copy_at[int(holder)].add(int(proc), int(r), int(w))

    if len(holder_list) == 1:
        only = copy_at[holder_list[0]]
        return ObjectCopies(obj=obj, kappa=kappa, copies=_split_copy(only, kappa))

    subtree_root, parent_in, depth_in = _induced_subtree_structure(rooted, holders)
    height = max(depth_in.values()) if depth_in else 0
    # level(v) = height - depth(v); process levels 0 .. height (leaves first).
    by_level: Dict[int, List[int]] = {}
    for node in holder_list:
        by_level.setdefault(height - depth_in[node], []).append(node)

    alive: Dict[int, CopyRecord] = dict(copy_at)
    for level in range(0, height + 1):
        for node in sorted(by_level.get(level, [])):
            copy = alive.get(node)
            if copy is None:
                continue
            if copy.s >= kappa and not (kappa == 0 and copy.s == 0 and len(alive) > 1):
                continue
            # The copy serves too few requests: delete it and move its
            # requests to the parent copy (or the nearest surviving copy for
            # the root of T(x)).  The ``kappa == 0`` clause additionally
            # prunes completely unused copies of read-only objects, which the
            # paper keeps but which carry no load either way.
            if node != subtree_root:
                target_node = parent_in[node]
                target = alive.get(target_node)
                if target is None:
                    # The parent was already deleted in an earlier round
                    # (possible only for kappa == 0 pruning); fall back to
                    # the nearest surviving copy.
                    target = alive[rooted.nearest_in_set(node, list(alive))]
            else:
                others = [n for n in alive if n != node]
                if not others:
                    continue  # the last copy is never deleted
                target = alive[rooted.nearest_in_set(node, others)]
            for proc, reads, writes in copy.take_all():
                target.add(proc, reads, writes)
            del alive[node]

    survivors: List[CopyRecord] = []
    for node in sorted(alive):
        survivors.extend(_split_copy(alive[node], kappa))
    return ObjectCopies(obj=obj, kappa=kappa, copies=survivors)


def apply_deletion(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    nibble_placement: Placement,
) -> List[ObjectCopies]:
    """Run the deletion algorithm for every object of a nibble placement."""
    rooted = network.rooted()
    result: List[ObjectCopies] = []
    for obj in range(pattern.n_objects):
        result.append(
            delete_rarely_used_copies(
                network, pattern, obj, nibble_placement.holders(obj), rooted=rooted
            )
        )
    return result


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of the congestion local search over copy records.

    Attributes
    ----------
    copies:
        Refined per-object copy records (the inputs are not mutated).
    moves_accepted:
        Number of copy-removal moves whose tentative evaluation improved
        the congestion and was committed.
    congestion_before / congestion_after:
        Congestion of the copies' exact assignment before and after.
    """

    copies: Tuple[ObjectCopies, ...]
    moves_accepted: int
    congestion_before: float
    congestion_after: float


def _clone_copies(copies_per_object: Sequence[ObjectCopies]) -> List[ObjectCopies]:
    return [
        ObjectCopies(
            obj=oc.obj,
            kappa=oc.kappa,
            copies=[
                CopyRecord(obj=c.obj, node=c.node, served=list(c.served), home=c.home)
                for c in oc.copies
            ],
        )
        for oc in copies_per_object
    ]


def _charge_copies(state: LoadState, oc: ObjectCopies) -> None:
    """Charge one object's serving traffic and write broadcast into a state."""
    procs: List[int] = []
    nodes: List[int] = []
    weights: List[int] = []
    for copy in oc.copies:
        for proc, reads, writes in copy.served:
            procs.append(proc)
            nodes.append(copy.node)
            weights.append(reads + writes)
    state.apply_pairs(procs, nodes, weights)
    holders = set(c.node for c in oc.copies)
    if oc.kappa > 0 and len(holders) > 1:
        state.apply_steiner(holders, float(oc.kappa))


def refine_copies(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    copies_per_object: Sequence[ObjectCopies],
    max_rounds: int = 3,
    tolerance: float = 1e-9,
    rooted: Optional[RootedTree] = None,
) -> RefinementResult:
    """Congestion local search over copy records (tentative-move evaluation).

    A move removes every copy of one object at one holder node and hands
    the served portions to the nearest remaining holder of that object
    (shrinking the write-broadcast Steiner tree accordingly).  Each move is
    evaluated *tentatively* on the incremental
    :class:`~repro.core.loadstate.LoadState`: apply the delta under a
    snapshot, read the lazily-repaired congestion, and commit or roll back
    -- no full :func:`~repro.core.congestion.compute_loads` pass per
    candidate.  Moves are accepted only when they strictly improve the
    congestion, so the result never costs more than the input.

    This is an optional post-pass: it deliberately trades the
    ``[κ_x, 2κ_x]`` service window of Observation 3.2 for lower measured
    congestion, so it runs *after* the paper pipeline, never inside it.
    """
    if rooted is None:
        rooted = network.rooted()
    copies = _clone_copies(copies_per_object)

    state = LoadState(network, rooted)
    for oc in copies:
        _charge_copies(state, oc)
    congestion_before = state.congestion

    moves = 0
    for _ in range(max(0, max_rounds)):
        improved = False
        for oc in copies:
            nodes = sorted(set(c.node for c in oc.copies))
            for node in nodes:
                remaining = [n for n in sorted(set(c.node for c in oc.copies)) if n != node]
                if not remaining:
                    continue
                at_node = [c for c in oc.copies if c.node == node]
                portions = [p for c in at_node for p in c.served]
                procs = np.asarray([p for (p, _r, _w) in portions], dtype=np.int64)
                weights = np.asarray(
                    [r + w for (_p, r, w) in portions], dtype=np.float64
                )
                targets = (
                    state.nearest_in_set(procs, remaining)
                    if procs.size
                    else np.empty(0, dtype=np.int64)
                )

                before = state.congestion
                snap = state.snapshot()
                # tentative move: reroute the served portions ...
                state.apply_pairs(procs, np.full(procs.shape, node), -weights)
                state.apply_pairs(procs, targets, weights)
                # ... and shrink the write broadcast
                old_holders = set(remaining) | {node}
                if oc.kappa > 0 and len(old_holders) > 1:
                    state.apply_steiner(old_holders, -float(oc.kappa))
                    if len(remaining) > 1:
                        state.apply_steiner(remaining, float(oc.kappa))
                if state.congestion < before - tolerance:
                    state.commit(snap)
                    moves += 1
                    improved = True
                    # commit the move on the records: merge portions into
                    # the target-node copies
                    by_node = {
                        c.node: c for c in oc.copies if c.node != node
                    }
                    for (proc, reads, writes), target in zip(portions, targets):
                        by_node[int(target)].add(proc, reads, writes)
                    oc.copies = [c for c in oc.copies if c.node != node]
                else:
                    state.rollback(snap)
        if not improved:
            break

    return RefinementResult(
        copies=tuple(copies),
        moves_accepted=moves,
        congestion_before=congestion_before,
        congestion_after=state.congestion,
    )


def copies_to_placement(
    copies_per_object: Sequence[ObjectCopies],
    pattern: AccessPattern,
    fallback_holders: Optional[Sequence[int]] = None,
) -> Tuple[Placement, RequestAssignment]:
    """Convert per-object copy records into a placement and an assignment.

    Parameters
    ----------
    copies_per_object:
        One :class:`ObjectCopies` per object (from :func:`apply_deletion` or
        after the mapping step).
    pattern:
        The access pattern (used for the object count and request totals).
    fallback_holders:
        Holder to use for an object that ended up with no copies at all
        (only possible for objects without requests); one node per object.
    """
    holders: List[List[int]] = []
    shares: Dict[Tuple[int, int], List[Share]] = {}
    for obj in range(pattern.n_objects):
        oc = copies_per_object[obj]
        nodes = sorted(oc.holder_nodes)
        if not nodes:
            if fallback_holders is None:
                raise AlgorithmError(
                    f"object {obj} has no copies and no fallback holder was given"
                )
            nodes = [int(fallback_holders[obj])]
        holders.append(nodes)
        for copy in oc.copies:
            for proc, reads, writes in copy.served:
                shares.setdefault((proc, obj), []).append(
                    Share(copy.node, reads, writes)
                )
    # Merge shares with identical holders (a processor may have several
    # portions on the same node after splitting).
    merged: Dict[Tuple[int, int], List[Share]] = {}
    for key, entries in shares.items():
        by_holder: Dict[int, List[int]] = {}
        for s in entries:
            agg = by_holder.setdefault(s.holder, [0, 0])
            agg[0] += s.reads
            agg[1] += s.writes
        merged[key] = [Share(h, r, w) for h, (r, w) in sorted(by_holder.items())]
    placement = Placement(holders)
    assignment = RequestAssignment(merged, pattern.n_objects)
    return placement, assignment
