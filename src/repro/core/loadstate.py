"""Incremental congestion engine shared by the replay layers.

PR 1 vectorized the *batch* cost model: given a whole placement, the sparse
path-incidence structure of :mod:`repro.core.pathmatrix` evaluates all loads
in a few numpy scatters.  The layers that *replay requests* -- the online
strategies of :mod:`repro.dynamic`, the round simulator of
:mod:`repro.distributed.request_sim` and the tentative-move searches of
:mod:`repro.core.optimal` / :mod:`repro.core.deletion` -- have the opposite
access shape: many small deltas (one path, one Steiner tree, one candidate
column) interleaved with congestion reads.  Recomputing bus loads and the
max relative load from scratch on every read makes each of those layers
quadratic in practice.

:class:`LoadState` is the shared substrate for that access shape:

* **O(path) delta application.**  ``apply_path`` / ``apply_steiner`` /
  ``apply_edges`` scatter a delta onto the touched entries only.  Edge and
  bus loads live in one fused array (bus loads doubled, i.e. the plain
  incident-edge sum), so a cached path entry updates and re-checks both
  with a single fancy-indexed gather/scatter.  Whole per-edge vectors
  (candidate placements, batched request chunks) go through
  ``apply_edge_loads`` / ``apply_pairs``.
* **Lazily-repaired running max.**  The congestion (max relative load over
  edges and buses) is kept incrementally: a non-negative delta can only
  raise relative loads, so the running max is repaired from the touched
  entries alone.  A negative delta marks the value stale and the next read
  performs one vectorized rescan.
* **Snapshot / rollback.**  ``snapshot()`` opens a journal; ``rollback``
  re-applies the journalled deltas negated and restores the congestion
  value recorded at snapshot time, so local search and branch-and-bound can
  tentatively evaluate moves in O(touched entries) instead of re-deriving
  loads with :func:`repro.core.congestion.compute_loads`.

All loads of the cost model are integer-valued (request counts) and bus
loads are half-integers, so every update -- in any order, including the
negated rollback replay -- is exact in double precision.  This is what makes
the bit-for-bit parity guarantees of the property tests possible.

:class:`StackedLoadState` extends the same substrate to *fleets*: K
strategy lanes replaying the same timeline hold their loads as one
``(K, n_rows)`` array over one shared :class:`~repro.core.pathmatrix.PathMatrix`
and one shared scatter-entry cache, so batched charges amortise the
index computations across all lanes and a topology repair debits/credits
every lane in a single array surgery.  :meth:`StackedLoadState.lane`
returns a :class:`LaneState` view exposing the per-lane slice of the
replay API (``apply_path`` / ``apply_steiner`` / ``apply_pairs`` /
``congestion`` / ``repair``), bit-for-bit equal to a standalone
:class:`LoadState` fed the same charges -- the exactness argument above
is order-free, so lane rows and standalone arrays agree bitwise.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.errors import AlgorithmError, MutationError

__all__ = ["LoadState", "LoadSnapshot", "StackedLoadState", "LaneState"]


class LoadSnapshot:
    """Opaque token returned by :meth:`LoadState.snapshot`.

    Records the journal position and the congestion tracker state at
    snapshot time; :meth:`LoadState.rollback` restores both exactly.
    ``epoch`` pins the snapshot to the topology it was taken on: a snapshot
    cannot be rolled back or committed across a :meth:`LoadState.repair`.
    """

    __slots__ = ("mark", "congestion", "stale", "active", "epoch")

    def __init__(self, mark: int, congestion: float, stale: bool, epoch: int = 0) -> None:
        self.mark = mark
        self.congestion = congestion
        self.stale = stale
        self.active = True
        self.epoch = epoch


class _SubstrateGeometry:
    """Topology-derived arrays and scatter-entry caches of a load substrate.

    Shared by :class:`LoadState` (one lane, 1-D fused array) and
    :class:`StackedLoadState` (K lanes, 2-D fused array): both keep the
    same endpoint/denominator/incidence arrays and the same per-path /
    per-terminal-set scatter-entry caches, so the two substrate shapes
    cannot diverge in how they address the fused load rows.
    """

    __slots__ = (
        "network",
        "rooted",
        "pm",
        "n_edges",
        "n_nodes",
        "_denom",
        "_edge_u",
        "_edge_v",
        "_node_is_bus",
        "_bus_nodes",
        "_inc_indptr",
        "_inc_edges",
        "_path_cache",
        "_steiner_cache",
        "_topology_epoch",
    )

    def _init_geometry(self, network, rooted) -> None:
        self.network = network
        self.rooted = rooted if rooted is not None else network.rooted()
        self.pm = self.rooted.path_matrix()

        self.n_edges = network.n_edges
        self.n_nodes = network.n_nodes

        # endpoint / bus arrays are shared with the path matrix (identical
        # construction from network.edges; both sides treat them as
        # immutable), so huge networks hold one int32 copy, not two
        self._edge_u = self.pm._edge_u
        self._edge_v = self.pm._edge_v
        self._node_is_bus = self.pm._bus_mask
        self._bus_nodes = np.flatnonzero(self.pm._bus_mask)

        self._denom = self._build_denominators(network)
        self._inc_indptr, self._inc_edges = self._build_incident_csr()

        self._path_cache: dict = {}
        self._steiner_cache: dict = {}
        self._topology_epoch = 0

    def _build_denominators(self, network) -> np.ndarray:
        """Fused relative-load denominators for the current edge/node arrays.

        Edge bandwidths, then doubled bus bandwidths (the node block stores
        doubled loads).  Processor rows always hold zero load; their
        denominator is pinned to 1 so the whole-array rescan never divides
        by a meaningless bandwidth.  Shared by ``__init__`` and
        :meth:`repair` so the two construction paths cannot diverge.
        """
        denom = np.ones(self.n_edges + self.n_nodes, dtype=np.float64)
        denom[: self.n_edges] = np.asarray(network.edge_bandwidths, dtype=np.float64)
        bus_bw2 = 2.0 * np.asarray(network.bus_bandwidths, dtype=np.float64)
        denom[self.n_edges + self._bus_nodes] = bus_bw2[self._bus_nodes]
        return denom

    def _build_incident_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Incident-edge CSR per node, built from the endpoint arrays.

        ``inc_edges[indptr[v]:indptr[v+1]]`` are the edge ids incident to
        node ``v``, ascending, with the ``u`` endpoint of an edge listed
        before its ``v`` endpoint.  Used for per-bus reads and the
        consistency check; shared by ``__init__`` and :meth:`repair`.
        """
        endpoints = np.empty(2 * self.n_edges, dtype=kernels.INDEX_DTYPE)
        endpoints[0::2] = self._edge_u
        endpoints[1::2] = self._edge_v
        eids = np.repeat(np.arange(self.n_edges, dtype=kernels.INDEX_DTYPE), 2)
        order = np.argsort(endpoints, kind="stable")
        indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(endpoints, minlength=self.n_nodes))
        return indptr, eids[order]

    def incident_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids incident to ``node`` (precomputed CSR slice)."""
        return self._inc_edges[self._inc_indptr[node] : self._inc_indptr[node + 1]]

    def memory_bytes(self) -> int:
        """Bytes held by the substrate arrays (the memory audit hook).

        Counts the fused load array, the denominator / incidence arrays and
        the shared :class:`~repro.core.pathmatrix.PathMatrix` tables, with
        arrays shared between the two deduplicated by identity.
        """
        pm = self.pm
        arrays = {
            id(a): a
            for a in (
                self._loads,
                self._denom,
                self._edge_u,
                self._edge_v,
                self._node_is_bus,
                self._bus_nodes,
                self._inc_indptr,
                self._inc_edges,
                pm._parent,
                pm._parent_edge,
                pm._depth,
                pm._up,
                pm._rp_indptr,
                pm._rp_edges,
                pm._rp_nodes,
                pm._edge_u,
                pm._edge_v,
                pm._bus_mask,
            )
        }
        return int(sum(a.nbytes for a in arrays.values()))

    # ------------------------------------------------------------------ #
    # scatter entries (shared by all lanes of a substrate)
    # ------------------------------------------------------------------ #
    def _make_entry(self, edge_ids: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Precompute the scatter entry of a fixed edge set (path / Steiner).

        The edge ids of a tree path or Steiner tree are distinct, so the
        fused indices (edges, then touched bus rows) can use plain fancy
        indexing instead of ``np.add.at``; the entry carries the per-index
        increments (1 per edge, the endpoint multiplicity per bus -- a bus
        interior to a path is touched by two of its edges) and the gathered
        denominators for the one-gather running-max repair.
        """
        nodes = np.concatenate([self._edge_u[edge_ids], self._edge_v[edge_ids]])
        buses = nodes[self._node_is_bus[nodes]]
        bus_nodes, mult = np.unique(buses, return_counts=True)
        fused = np.concatenate([edge_ids, self.n_edges + bus_nodes])
        inc = np.concatenate([np.ones(edge_ids.size), mult.astype(np.float64)])
        return (edge_ids, fused, inc, self._denom[fused])

    def _path_entry(self, src: int, dst: int) -> Tuple[np.ndarray, ...]:
        key = (src, dst) if src < dst else (dst, src)
        entry = self._path_cache.get(key)
        if entry is None:
            ids = np.asarray(self.rooted.path_edge_ids(src, dst), dtype=np.int64)
            entry = self._make_entry(ids)
            self._path_cache[key] = entry
        return entry

    def _steiner_entry(self, key: frozenset) -> Tuple[np.ndarray, ...]:
        entry = self._steiner_cache.get(key)
        if entry is None:
            ids = np.asarray(self.rooted.steiner_edge_ids(key), dtype=np.int64)
            entry = self._make_entry(ids)
            self._steiner_cache[key] = entry
        return entry

    def _refresh_cached_denoms(self) -> None:
        """Re-gather the denominators cached inside every scatter entry."""
        for cache in (self._path_cache, self._steiner_cache):
            for key, (ids, fused, inc, _denom) in list(cache.items()):
                cache[key] = (ids, fused, inc, self._denom[fused])

    # ------------------------------------------------------------------ #
    # structural helpers shared with the strategies
    # ------------------------------------------------------------------ #
    def path_length(self, src: int, dst: int) -> int:
        """Number of edges on the path ``src -> dst`` (cached)."""
        if src == dst:
            return 0
        return int(self._path_entry(src, dst)[0].size)

    def pair_costs(self, u, v) -> np.ndarray:
        """Path lengths of the pairs ``u[i] -> v[i]`` (vectorized)."""
        return self.pm.distances(u, v)

    def nearest_in_set(self, nodes, candidates: Sequence[int]) -> np.ndarray:
        """Nearest candidate per node (ties to the smallest id), vectorized."""
        return self.pm.nearest_in_set(np.asarray(nodes, dtype=np.int64), candidates)


class LoadState(_SubstrateGeometry):
    """Incremental edge/bus load and congestion bookkeeping for one network.

    Parameters
    ----------
    network:
        The :class:`~repro.network.tree.HierarchicalBusNetwork`.
    rooted:
        Optional rooted view; defaults to the network's cached canonical
        rooting (the same one the batch evaluators use).

    Internally all loads live in one fused array of length
    ``n_edges + n_nodes``: the edge block holds per-edge loads, the node
    block holds *doubled* bus loads (the plain incident-edge sum; halving
    happens on read so every increment stays integer-valued and exact).
    Relative loads divide the fused array by a fused bandwidth array, which
    turns both the rescan and the per-delta running-max repair into a
    single gather / divide / max.
    """

    __slots__ = (
        "_loads",
        "_congestion",
        "_stale",
        "_journal",
        "_snapshots",
    )

    def __init__(self, network, rooted=None) -> None:
        self._init_geometry(network, rooted)
        self._loads = np.zeros(self.n_edges + self.n_nodes, dtype=np.float64)
        self._congestion = 0.0
        self._stale = False
        self._journal: List[Tuple[str, object, object]] = []
        self._snapshots: List[LoadSnapshot] = []

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    @property
    def edge_loads(self) -> np.ndarray:
        """Per-edge accumulated loads (live view of the fused array)."""
        return self._loads[: self.n_edges]

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads (zero for processors), derived incrementally."""
        return self._loads[self.n_edges :] * 0.5

    def bus_load(self, bus: int) -> float:
        """Load of one bus (half the incident-edge load sum)."""
        return float(self._loads[self.n_edges + bus]) * 0.5

    @property
    def total_load(self) -> float:
        """Total communication load (sum of all edge loads)."""
        return float(self._loads[: self.n_edges].sum())

    @property
    def congestion(self) -> float:
        """Max relative load over edges and buses (lazily repaired)."""
        if self._stale:
            self._congestion = self._rescan()
            self._stale = False
        return self._congestion

    def _rescan(self) -> float:
        if not self._loads.size:
            return 0.0
        return kernels.rescan(self._loads, self._denom)

    def verify_bus_loads(self) -> bool:
        """Debug check: incremental bus loads match a CSR recomputation."""
        edge_loads = self.edge_loads
        for bus in self._bus_nodes:
            expected = edge_loads[self.incident_edge_ids(int(bus))].sum()
            if expected != self._loads[self.n_edges + bus]:
                return False
        return True

    # ------------------------------------------------------------------ #
    # delta application
    # ------------------------------------------------------------------ #
    def _apply_entry(self, entry: Tuple[np.ndarray, ...], amount: float) -> None:
        _ids, fused, inc, denom = entry
        loads = self._loads
        loads[fused] += inc * amount
        if not self._stale:
            if amount >= 0:
                value = float((loads[fused] / denom).max())
                if value > self._congestion:
                    self._congestion = value
            else:
                self._stale = True
        if self._snapshots:
            self._journal.append(("entry", entry, amount))

    def apply_path(self, src: int, dst: int, amount: float = 1.0) -> int:
        """Charge ``amount`` on every edge of the tree path ``src -> dst``.

        Returns the path length in edges.  Scatter entries are cached per
        endpoint pair, so replaying a hot request path costs one O(path)
        fancy-indexed update with no tree walk.
        """
        if src == dst:
            return 0
        entry = self._path_entry(src, dst)
        if amount != 0:
            self._apply_entry(entry, amount)
        return int(entry[0].size)

    def apply_steiner(self, terminals: Iterable[int], amount: float = 1.0) -> int:
        """Charge ``amount`` on every edge of the Steiner tree of ``terminals``.

        Returns the number of Steiner edges.  Cached per terminal set.
        """
        key = frozenset(int(t) for t in terminals)
        entry = self._steiner_entry(key)
        if entry[0].size and amount != 0:
            self._apply_entry(entry, amount)
        return int(entry[0].size)

    def apply_edges(self, edge_ids, amount: float = 1.0) -> int:
        """Add ``amount`` to every listed edge (ids may repeat); O(len(ids)).

        Returns the number of edge entries charged.  Bus loads and the
        congestion tracker are updated from the touched entries alone.
        """
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.size == 0 or amount == 0:
            return 0
        np.add.at(self._loads, ids, amount)
        nodes = np.concatenate([self._edge_u[ids], self._edge_v[ids]])
        buses = nodes[self._node_is_bus[nodes]] + self.n_edges
        np.add.at(self._loads, buses, amount)
        if not self._stale:
            if amount >= 0:
                touched = np.concatenate([ids, buses])
                value = float((self._loads[touched] / self._denom[touched]).max())
                if value > self._congestion:
                    self._congestion = value
            else:
                self._stale = True
        if self._snapshots:
            self._journal.append(("edges", (ids, buses), amount))
        return int(ids.size)

    def apply_edge_loads(self, vector: np.ndarray) -> None:
        """Add a whole per-edge load vector (one candidate / batch column).

        The caller must not mutate ``vector`` while a snapshot that saw this
        apply is still open (the journal keeps a reference, not a copy).
        """
        vec = np.ascontiguousarray(vector, dtype=np.float64)
        if vec.shape != (self.n_edges,):
            raise AlgorithmError("edge-load vector has the wrong shape")
        any_negative = self._scatter_vector(vec, 1.0)
        if not self._stale:
            if not any_negative:
                # a full column touches everything: one vectorized rescan
                value = self._rescan()
                if value > self._congestion:
                    self._congestion = value
            else:
                self._stale = True
        if self._snapshots:
            self._journal.append(("vector", vec, None))

    def _scatter_vector(self, vec: np.ndarray, sign: float) -> bool:
        """Fused edge-block + bus-fold apply of one per-edge column.

        Returns whether any entry of ``vec`` fails ``>= 0`` (the staleness
        trigger); the rollback path ignores the flag.
        """
        return kernels.apply_column(
            self._loads,
            vec,
            self._edge_u,
            self._edge_v,
            self._node_is_bus,
            self.n_edges,
            sign,
        )

    def apply_pairs(self, u, v, w) -> None:
        """Charge weighted request pairs ``u[i] -> v[i]`` in one batch.

        Equivalent to ``apply_path`` per pair (exactly, for integer-valued
        weights) but evaluated through the path-incidence operator.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if u.size == 0:
            return
        self.apply_edge_loads(self.pm.pair_edge_loads(u, v, w))

    # ------------------------------------------------------------------ #
    # tentative evaluation
    # ------------------------------------------------------------------ #
    def trial_congestions(self, columns: np.ndarray) -> np.ndarray:
        """Congestion of (current state + column) for every column, read-only.

        ``columns`` has shape ``(n_edges, k)``; the result has shape ``(k,)``.
        Used by search layers to score candidate moves in one pass without
        mutating the state.
        """
        cols = np.asarray(columns, dtype=np.float64)
        if cols.ndim == 1:
            cols = cols[:, None]
        n_edges = self.n_edges
        fused = np.zeros((self._loads.size, cols.shape[1]), dtype=np.float64)
        fused[:n_edges] = cols
        bus2 = fused[n_edges:]
        np.add.at(bus2, self._edge_u, cols)
        np.add.at(bus2, self._edge_v, cols)
        bus2[~self._node_is_bus] = 0.0
        fused += self._loads[:, None]
        return (fused / self._denom[:, None]).max(axis=0)

    # ------------------------------------------------------------------ #
    # snapshot / rollback
    # ------------------------------------------------------------------ #
    def snapshot(self) -> LoadSnapshot:
        """Start journalling deltas; returns a token for rollback/commit."""
        snap = LoadSnapshot(
            len(self._journal), self._congestion, self._stale, self._topology_epoch
        )
        self._snapshots.append(snap)
        return snap

    def _check_epoch(self, snap: LoadSnapshot) -> None:
        if snap.epoch != self._topology_epoch:
            raise MutationError(
                "cannot rollback or commit across a topology mutation: the "
                "snapshot was taken before repair() changed the network; "
                "journalled deltas no longer address the fused load array"
            )

    def rollback(self, snap: LoadSnapshot) -> None:
        """Undo every delta applied since ``snap`` (LIFO discipline).

        Also restores the congestion tracker recorded at snapshot time, so a
        rolled-back tentative move leaves no staleness behind.  Raises
        :class:`~repro.errors.MutationError` when the snapshot predates a
        :meth:`repair` -- rolling journalled deltas onto a repaired array
        would silently corrupt the loads.
        """
        self._check_epoch(snap)
        self._pop_to(snap)
        while len(self._journal) > snap.mark:
            kind, payload, amount = self._journal.pop()
            if kind == "entry":
                _ids, fused, inc, _denom = payload
                self._loads[fused] -= inc * amount
            elif kind == "edges":
                ids, buses = payload
                np.add.at(self._loads, ids, -amount)
                np.add.at(self._loads, buses, -amount)
            else:  # "vector"
                self._scatter_vector(payload, -1.0)
        self._congestion = snap.congestion
        self._stale = snap.stale

    def commit(self, snap: LoadSnapshot) -> None:
        """Keep every delta applied since ``snap`` and close the snapshot."""
        self._check_epoch(snap)
        self._pop_to(snap)
        if not self._snapshots:
            self._journal.clear()

    def _pop_to(self, snap: LoadSnapshot) -> None:
        if not snap.active:
            raise AlgorithmError("snapshot was already rolled back or committed")
        while self._snapshots:
            top = self._snapshots.pop()
            top.active = False
            if top is snap:
                return
        raise AlgorithmError("snapshot does not belong to this LoadState")

    def load_profile(self):
        """Materialise the current state as a static :class:`LoadProfile`."""
        from repro.core.congestion import LoadProfile

        return LoadProfile(
            network=self.network,
            edge_loads=self.edge_loads.copy(),
            bus_loads=self.bus_loads,
        )

    # ------------------------------------------------------------------ #
    # topology repair
    # ------------------------------------------------------------------ #
    def repair(self, outcomes) -> None:
        """Carry this state over one or more topology mutations, in place.

        ``outcomes`` is a single :class:`~repro.network.mutation.MutationOutcome`
        or a sequence of them (applied in order; each must start from the
        network the previous one produced).  After repair the state is
        **bit-for-bit equal to a from-scratch rebuild**: a fresh
        ``LoadState(outcome.network)`` charged with
        ``outcome.mapped_edge_loads(old_edge_loads)`` -- removed edges drop
        their loads, new edges start at zero, bus rows and relative-load
        denominators follow.  The repair itself is vectorized array
        surgery:

        * bandwidth mutations touch only the affected denominator entries
          (and refresh the denominators cached in scatter entries);
        * ``attach_leaf`` appends zero-load rows;
        * ``detach_leaf`` drops the leaf's rows and debits its switch-edge
          load from its bus row;
        * ``split_bus`` debits the moved switch-edge loads from the split
          bus and credits them to the new bus row.

        Exactness relies on loads being integer-valued (invariant 2 of
        ARCHITECTURE.md).  Snapshots cannot cross a repair: repairing with
        open snapshots raises :class:`~repro.errors.MutationError` (the
        journalled tentative deltas would otherwise silently become
        permanent), and any later :meth:`rollback` / :meth:`commit` of a
        snapshot taken before a repair raises it too.  Path/Steiner
        scatter caches are cleared on structural mutations (they recharge
        lazily).
        """
        from repro.network.mutation import MutationOutcome

        if self._snapshots:
            raise MutationError(
                "cannot repair while snapshots are open: roll back or commit "
                "tentative deltas first (journalled moves would otherwise be "
                "silently committed by the repair)"
            )
        if isinstance(outcomes, MutationOutcome):
            outcomes = [outcomes]
        for outcome in outcomes:
            self._repair_one(outcome)

    def _repair_one(self, outcome) -> None:
        from repro.network.mutation import AttachLeaf, DetachLeaf, SplitBus

        if outcome.old_network is not self.network:
            raise MutationError(
                "mutation outcome does not apply to this state's network"
            )
        new_rooted = self.rooted.repaired(outcome)
        new_pm = self.pm.repaired(outcome, new_rooted)
        network = outcome.network
        n_edges_old = self.n_edges
        mutation = outcome.mutation

        if not outcome.structural:
            if outcome.changed_edge is not None:
                self._denom[outcome.changed_edge] = network.edge_bandwidth(
                    outcome.changed_edge
                )
            if outcome.changed_bus is not None:
                self._denom[n_edges_old + outcome.changed_bus] = (
                    2.0 * network.bus_bandwidth(outcome.changed_bus)
                )
            # scatter entries cache their denominator gather: refresh it
            self._refresh_cached_denoms()
        else:
            edge_block = self._loads[:n_edges_old]
            node_block = self._loads[n_edges_old:]
            zero = np.zeros(1, dtype=np.float64)
            if isinstance(mutation, AttachLeaf):
                loads = np.concatenate([edge_block, zero, node_block, zero])
            elif isinstance(mutation, DetachLeaf):
                node_rows = node_block.copy()
                node_rows[outcome.touched_bus] -= edge_block[outcome.removed_edge]
                loads = np.concatenate(
                    [edge_block[outcome.edge_map >= 0], node_rows[outcome.node_map >= 0]]
                )
            elif isinstance(mutation, SplitBus):
                mids = np.asarray(outcome.moved_edge_ids, dtype=np.int64)
                moved_sum = float(edge_block[mids].sum())
                node_rows = node_block.copy()
                node_rows[outcome.touched_bus] -= moved_sum
                loads = np.concatenate(
                    [edge_block, zero, node_rows, np.asarray([moved_sum])]
                )
            else:
                raise MutationError(
                    f"no repair rule for mutation {type(mutation).__name__}"
                )
            self._loads = loads
            self.n_edges = network.n_edges
            self.n_nodes = network.n_nodes
            self._edge_u = new_pm._edge_u
            self._edge_v = new_pm._edge_v
            self._node_is_bus = new_pm._bus_mask
            self._bus_nodes = np.flatnonzero(new_pm._bus_mask)

            self._denom = self._build_denominators(network)
            self._inc_indptr, self._inc_edges = self._build_incident_csr()

            self._path_cache.clear()
            self._steiner_cache.clear()

        self.network = network
        self.rooted = new_rooted
        self.pm = new_pm
        self._stale = True
        self._topology_epoch += 1
        self._journal.clear()

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Zero all loads and drop journal/snapshot state (caches survive)."""
        if self._snapshots:
            raise AlgorithmError("cannot reset while snapshots are open")
        self._loads[:] = 0.0
        self._congestion = 0.0
        self._stale = False
        self._journal.clear()


class StackedLoadState(_SubstrateGeometry):
    """K load lanes over one shared substrate (the fleet-replay engine).

    Replaying the same request/churn timeline under K strategies against K
    independent :class:`LoadState` instances pays K times for everything
    that only depends on the *topology*: scatter-entry construction, bus
    folds, congestion rescans and churn repairs.  The stacked state keeps
    one fused load array of shape ``(K, n_edges + n_nodes)`` instead, with

    * **shared geometry** -- one :class:`~repro.core.pathmatrix.PathMatrix`,
      one denominator array and one path/Steiner scatter-entry cache for
      all lanes;
    * **lane-broadcast batch charges** -- :meth:`apply_edge_loads_lanes`
      adds one per-edge column per lane in a single batched scatter (the
      bus fold and the per-lane running-max repair are vectorized over the
      lane axis);
    * **per-lane running-max congestion** -- ``_congestion`` / ``_stale``
      are arrays over lanes, maintained with exactly the rules of
      :class:`LoadState`;
    * **one shared churn repair** -- :meth:`repair` carries *all* lanes
      over a topology mutation with a single 2-D array surgery
      (debit/credit per lane row), and is idempotent per
      :class:`~repro.network.mutation.MutationOutcome` so every lane's
      strategy can call it through its own view without double-applying.

    All charges are integer-valued (ARCHITECTURE.md invariant 2), so each
    lane row is bit-for-bit the fused array of a standalone
    :class:`LoadState` fed the same charges in any order -- the fleet
    parity tests pin this down.

    Lanes do not journal: :meth:`LaneState.snapshot` raises.  Search
    layers needing tentative moves keep using :class:`LoadState`.
    """

    __slots__ = (
        "n_lanes",
        "_loads",
        "_congestion",
        "_stale",
        "_lanes",
        "_applied_outcomes",
    )

    def __init__(self, network, n_lanes: int, rooted=None) -> None:
        if n_lanes < 1:
            raise AlgorithmError("a stacked load state needs at least one lane")
        self._init_geometry(network, rooted)
        self.n_lanes = int(n_lanes)
        self._loads = np.zeros(
            (self.n_lanes, self.n_edges + self.n_nodes), dtype=np.float64
        )
        self._congestion = np.zeros(self.n_lanes, dtype=np.float64)
        self._stale = np.zeros(self.n_lanes, dtype=bool)
        self._lanes = tuple(LaneState(self, k) for k in range(self.n_lanes))
        self._applied_outcomes: Optional[List] = None

    @property
    def lanes(self) -> Tuple["LaneState", ...]:
        """All lane views, in lane order."""
        return self._lanes

    def lane(self, index: int) -> "LaneState":
        """The view of one lane (stable across repairs)."""
        return self._lanes[index]

    # ------------------------------------------------------------------ #
    # per-lane primitives (called through the LaneState views)
    # ------------------------------------------------------------------ #
    def _lane_congestion(self, k: int) -> float:
        if self._stale[k]:
            row = self._loads[k]
            self._congestion[k] = kernels.rescan(row, self._denom) if row.size else 0.0
            self._stale[k] = False
        return float(self._congestion[k])

    def _apply_entry_lane(self, k: int, entry: Tuple[np.ndarray, ...], amount: float) -> None:
        _ids, fused, inc, denom = entry
        row = self._loads[k]
        row[fused] += inc * amount
        if not self._stale[k]:
            if amount >= 0:
                value = float((row[fused] / denom).max())
                if value > self._congestion[k]:
                    self._congestion[k] = value
            else:
                self._stale[k] = True

    # ------------------------------------------------------------------ #
    # lane-broadcast batch application
    # ------------------------------------------------------------------ #
    def apply_edge_loads_lanes(self, lanes, columns: np.ndarray) -> None:
        """Add one per-edge load column per listed lane, batched.

        ``columns`` has shape ``(n_edges, len(lanes))`` (column ``j`` goes
        to lane ``lanes[j]``); the bus fold and the congestion update run
        once over the whole block instead of once per lane.  Lane ids must
        be distinct.  Produces bit-for-bit the loads and congestion of
        ``LoadState.apply_edge_loads`` called per lane.
        """
        lanes = np.ascontiguousarray(lanes, dtype=np.int64)
        cols = np.ascontiguousarray(columns, dtype=np.float64)
        if cols.ndim == 1:
            cols = cols[:, None]
        if cols.shape != (self.n_edges, lanes.size):
            raise AlgorithmError("edge-load column block has the wrong shape")
        if np.unique(lanes).size != lanes.size:
            # a buffered fancy-index "+=" would drop all but one duplicate
            raise AlgorithmError("lane ids must be distinct")
        negative = kernels.apply_columns_lanes(
            self._loads,
            lanes,
            cols,
            self._edge_u,
            self._edge_v,
            self._node_is_bus,
            self.n_edges,
        )
        if negative.any():
            self._stale[lanes[negative]] = True
        fresh = lanes[~negative & ~self._stale[lanes]]
        if fresh.size:
            values = kernels.rescan_rows(self._loads, fresh, self._denom)
            self._congestion[fresh] = np.maximum(self._congestion[fresh], values)

    # ------------------------------------------------------------------ #
    # reads over the whole fleet
    # ------------------------------------------------------------------ #
    @property
    def congestions(self) -> np.ndarray:
        """Per-lane congestion values (stale lanes rescanned first)."""
        if self._stale.any():
            rows = np.flatnonzero(self._stale)
            self._congestion[rows] = kernels.rescan_rows(
                self._loads, rows, self._denom
            )
            self._stale[rows] = False
        return self._congestion.copy()

    def verify_bus_loads(self, lane: Optional[int] = None) -> bool:
        """Debug check: incremental bus loads match a CSR recomputation."""
        lanes = range(self.n_lanes) if lane is None else (lane,)
        for k in lanes:
            row = self._loads[k]
            for bus in self._bus_nodes:
                expected = row[self.incident_edge_ids(int(bus))].sum()
                if expected != row[self.n_edges + bus]:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # shared topology repair
    # ------------------------------------------------------------------ #
    def repair(self, outcomes) -> None:
        """Carry every lane over one or more topology mutations, in place.

        One 2-D array surgery debits/credits all lane rows at once; the
        per-lane result is bit-for-bit what :meth:`LoadState.repair` does
        to a standalone state.  The repair is **idempotent per call
        arguments**: each lane's strategy calls it through its own view
        with the same outcome (or outcome sequence), only the first call
        applies the mutations, and every later identical call is a no-op
        (re-applying would fail anyway -- an outcome's ``old_network`` no
        longer matches after the first application).  Only the previous
        call's outcomes are remembered, so no unbounded history of old
        networks is kept alive.
        """
        from repro.network.mutation import MutationOutcome

        if isinstance(outcomes, MutationOutcome):
            outcomes = [outcomes]
        else:
            outcomes = list(outcomes)
        previous = self._applied_outcomes
        if (
            previous is not None
            and len(previous) == len(outcomes)
            and all(a is b for a, b in zip(previous, outcomes))
        ):
            return
        for outcome in outcomes:
            self._repair_one(outcome)
        self._applied_outcomes = outcomes

    def _repair_one(self, outcome) -> None:
        from repro.network.mutation import AttachLeaf, DetachLeaf, SplitBus

        if outcome.old_network is not self.network:
            raise MutationError(
                "mutation outcome does not apply to this state's network"
            )
        new_rooted = self.rooted.repaired(outcome)
        new_pm = self.pm.repaired(outcome, new_rooted)
        network = outcome.network
        n_edges_old = self.n_edges
        mutation = outcome.mutation

        if not outcome.structural:
            if outcome.changed_edge is not None:
                self._denom[outcome.changed_edge] = network.edge_bandwidth(
                    outcome.changed_edge
                )
            if outcome.changed_bus is not None:
                self._denom[n_edges_old + outcome.changed_bus] = (
                    2.0 * network.bus_bandwidth(outcome.changed_bus)
                )
            self._refresh_cached_denoms()
        else:
            edge_block = self._loads[:, :n_edges_old]
            node_block = self._loads[:, n_edges_old:]
            zero = np.zeros((self.n_lanes, 1), dtype=np.float64)
            if isinstance(mutation, AttachLeaf):
                loads = np.concatenate([edge_block, zero, node_block, zero], axis=1)
            elif isinstance(mutation, DetachLeaf):
                node_rows = node_block.copy()
                node_rows[:, outcome.touched_bus] -= edge_block[:, outcome.removed_edge]
                # the masked column gathers come out F-ordered (and
                # concatenate preserves that when every input is F); the
                # lane kernels need a C-ordered stack
                loads = np.ascontiguousarray(
                    np.concatenate(
                        [
                            edge_block[:, outcome.edge_map >= 0],
                            node_rows[:, outcome.node_map >= 0],
                        ],
                        axis=1,
                    )
                )
            elif isinstance(mutation, SplitBus):
                mids = np.asarray(outcome.moved_edge_ids, dtype=np.int64)
                moved_sum = edge_block[:, mids].sum(axis=1)
                node_rows = node_block.copy()
                node_rows[:, outcome.touched_bus] -= moved_sum
                loads = np.concatenate(
                    [edge_block, zero, node_rows, moved_sum[:, None]], axis=1
                )
            else:
                raise MutationError(
                    f"no repair rule for mutation {type(mutation).__name__}"
                )
            self._loads = loads
            self.n_edges = network.n_edges
            self.n_nodes = network.n_nodes
            self._edge_u = new_pm._edge_u
            self._edge_v = new_pm._edge_v
            self._node_is_bus = new_pm._bus_mask
            self._bus_nodes = np.flatnonzero(new_pm._bus_mask)

            self._denom = self._build_denominators(network)
            self._inc_indptr, self._inc_edges = self._build_incident_csr()

            self._path_cache.clear()
            self._steiner_cache.clear()

        self.network = network
        self.rooted = new_rooted
        self.pm = new_pm
        self._stale[:] = True
        self._topology_epoch += 1


class LaneState:
    """One lane of a :class:`StackedLoadState`, shaped like a :class:`LoadState`.

    Exposes the replay slice of the :class:`LoadState` API (charges, reads,
    repair) against the lane's row of the shared fused array, so a
    strategy's :class:`~repro.dynamic.online.OnlineCostAccount` can sit on
    a fleet lane without knowing it.  Journalling (snapshot / rollback /
    commit) is not supported on lanes -- tentative-move search layers keep
    their own standalone :class:`LoadState`.
    """

    __slots__ = ("parent", "lane_index")

    def __init__(self, parent: StackedLoadState, lane_index: int) -> None:
        self.parent = parent
        self.lane_index = int(lane_index)

    # -- geometry proxies ---------------------------------------------- #
    @property
    def network(self):
        return self.parent.network

    @property
    def rooted(self):
        return self.parent.rooted

    @property
    def pm(self):
        return self.parent.pm

    @property
    def n_edges(self) -> int:
        return self.parent.n_edges

    @property
    def n_nodes(self) -> int:
        return self.parent.n_nodes

    # -- reads ---------------------------------------------------------- #
    @property
    def edge_loads(self) -> np.ndarray:
        """Per-edge accumulated loads (live view of the lane row)."""
        return self.parent._loads[self.lane_index, : self.parent.n_edges]

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads (zero for processors), derived incrementally."""
        return self.parent._loads[self.lane_index, self.parent.n_edges :] * 0.5

    def bus_load(self, bus: int) -> float:
        """Load of one bus (half the incident-edge load sum)."""
        return float(self.parent._loads[self.lane_index, self.parent.n_edges + bus]) * 0.5

    def incident_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids incident to ``node`` (shared CSR slice)."""
        return self.parent.incident_edge_ids(node)

    @property
    def total_load(self) -> float:
        """Total communication load (sum of the lane's edge loads)."""
        return float(self.edge_loads.sum())

    @property
    def congestion(self) -> float:
        """Max relative load over edges and buses (lazily repaired)."""
        return self.parent._lane_congestion(self.lane_index)

    def verify_bus_loads(self) -> bool:
        """Debug check: the lane's bus rows match a CSR recomputation."""
        return self.parent.verify_bus_loads(self.lane_index)

    # -- delta application ---------------------------------------------- #
    def apply_path(self, src: int, dst: int, amount: float = 1.0) -> int:
        """Charge ``amount`` on every edge of the tree path ``src -> dst``."""
        if src == dst:
            return 0
        entry = self.parent._path_entry(src, dst)
        if amount != 0:
            self.parent._apply_entry_lane(self.lane_index, entry, amount)
        return int(entry[0].size)

    def apply_steiner(self, terminals: Iterable[int], amount: float = 1.0) -> int:
        """Charge ``amount`` on every edge of the Steiner tree of ``terminals``."""
        key = frozenset(int(t) for t in terminals)
        entry = self.parent._steiner_entry(key)
        if entry[0].size and amount != 0:
            self.parent._apply_entry_lane(self.lane_index, entry, amount)
        return int(entry[0].size)

    def apply_edge_loads(self, vector: np.ndarray) -> None:
        """Add a whole per-edge load vector to this lane."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.parent.n_edges,):
            raise AlgorithmError("edge-load vector has the wrong shape")
        self.parent.apply_edge_loads_lanes([self.lane_index], vec[:, None])

    def apply_pairs(self, u, v, w) -> None:
        """Charge weighted request pairs ``u[i] -> v[i]`` in one batch."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if u.size == 0:
            return
        self.apply_edge_loads(self.parent.pm.pair_edge_loads(u, v, w))

    # -- structural helpers --------------------------------------------- #
    def path_length(self, src: int, dst: int) -> int:
        """Number of edges on the path ``src -> dst`` (shared cache)."""
        return self.parent.path_length(src, dst)

    def pair_costs(self, u, v) -> np.ndarray:
        """Path lengths of the pairs ``u[i] -> v[i]`` (vectorized)."""
        return self.parent.pair_costs(u, v)

    def nearest_in_set(self, nodes, candidates: Sequence[int]) -> np.ndarray:
        """Nearest candidate per node (ties to the smallest id), vectorized."""
        return self.parent.nearest_in_set(nodes, candidates)

    def load_profile(self):
        """Materialise the lane's current state as a static ``LoadProfile``."""
        from repro.core.congestion import LoadProfile

        return LoadProfile(
            network=self.parent.network,
            edge_loads=self.edge_loads.copy(),
            bus_loads=self.bus_loads,
        )

    # -- repair ---------------------------------------------------------- #
    def repair(self, outcomes) -> None:
        """Carry the whole stacked substrate over a mutation (idempotent)."""
        self.parent.repair(outcomes)

    # -- unsupported LoadState surface ----------------------------------- #
    def snapshot(self):
        """Lanes do not journal; tentative-move search needs a LoadState."""
        raise AlgorithmError(
            "fleet lanes do not support snapshot/rollback: use a standalone "
            "LoadState for tentative-move search"
        )

    def trial_congestions(self, columns):
        """Unsupported on lanes (see :meth:`snapshot`)."""
        raise AlgorithmError(
            "fleet lanes do not support trial evaluation: use a standalone "
            "LoadState for tentative-move search"
        )
