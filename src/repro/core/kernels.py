"""Compiled kernel backends for the replay hot loops.

The replay stack funnels every hot loop -- the batched LCA walk, the CSR
path scatter, the pair-delta scatter, the bus fold, the fused load apply
and the running-max congestion rescan -- through the small set of kernel
operations in this module.  Each operation has three interchangeable
implementations:

``numpy``
    The vectorized reference (the pre-compiled-backend code of
    :mod:`repro.core.pathmatrix` / :mod:`repro.core.loadstate`, moved here
    verbatim as the ``_reference_*`` twins).  Always available.
``cc``
    A tiny C library embedded in this file, compiled on first use with the
    system C compiler (``cc``/``gcc``/``clang``) into a shared object that
    is cached on disk keyed by the source hash, and loaded via ctypes.
    Available wherever a C compiler is installed.
``numba``
    ``@njit`` twins of the same loops (see
    :mod:`repro.core._numba_kernels`).  Available when the optional
    ``numba`` dependency is installed (``pip install repro[compiled]``).

Selection is controlled by the ``REPRO_BACKEND`` environment variable
(``numba`` | ``cc`` | ``numpy`` | ``auto``, default ``auto``: numba if
importable, else cc if a compiler is found, else numpy).  Requesting a
backend that is unavailable raises :class:`~repro.errors.AlgorithmError`
instead of silently falling back.  :func:`set_backend` /
:func:`use_backend` override the environment at runtime (used by the
differential suite and the compiled-vs-numpy benchmark gates).

**Compiled equals reference (ARCHITECTURE.md invariant 9).**  Every
compiled kernel is bit-for-bit equal to its numpy ``_reference_*`` twin,
not merely close: all charges of the cost model are integer-valued request
counts (invariant 2), so every float addition performed by these kernels
is exact in double precision and the order of additions cannot change the
result; congestion values are maxima over identical division results.
The differential suite (``tests/properties/test_kernel_differential.py``)
pins this down on a seed matrix for every available backend, and the
compiled library is built without ``-ffast-math`` so IEEE semantics are
preserved.

Index dtypes: the substrate stores node ids, edge ids and lifting-table
entries as :data:`INDEX_DTYPE` (int32) so huge networks fit in memory;
:func:`ensure_index_capacity` guards the int32 range explicitly (raising
:class:`~repro.errors.CapacityError`, never wrapping).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import AlgorithmError, CapacityError

__all__ = [
    "INDEX_DTYPE",
    "BACKENDS",
    "active_backend",
    "available_backends",
    "set_backend",
    "use_backend",
    "ensure_index_capacity",
    "aggregate_pairs",
    "lca",
    "scatter_paths",
    "pair_scatter",
    "pair_scatter_lanes",
    "bus_fold",
    "apply_column",
    "apply_columns_lanes",
    "rescan",
    "rescan_rows",
]

#: Narrowest safe index dtype of the substrate's CSR / lifting tables.
INDEX_DTYPE = np.int32

#: Recognised ``REPRO_BACKEND`` values, in auto-detection order.
BACKENDS = ("numba", "cc", "numpy")

_INT32_MAX = np.iinfo(np.int32).max


def ensure_index_capacity(n_nodes: int, n_edges: int, path_entries: int) -> None:
    """Guard the int32 index range of the substrate tables, explicitly.

    Raises :class:`~repro.errors.CapacityError` when the node count, edge
    count or total root-path entry count of a network would overflow the
    int32 CSR / lifting tables -- indices are never silently wrapped.
    """
    for what, value in (
        ("node count", n_nodes),
        ("edge count", n_edges),
        ("root-path entry count", path_entries),
    ):
        if int(value) > _INT32_MAX:
            raise CapacityError(
                f"network {what} {int(value)} exceeds the int32 capacity "
                f"({_INT32_MAX}) of the path-incidence substrate; the "
                "int32 index tables would overflow (indices are never "
                "silently wrapped)"
            )


# --------------------------------------------------------------------- #
# backend-independent aggregation
# --------------------------------------------------------------------- #
def aggregate_pairs(procs: np.ndarray, objs: np.ndarray):
    """Unique ``(processor, object)`` pairs with multiplicities, lex-sorted.

    Returns ``(uprocs, uobjs, counts)`` with the pairs sorted by processor
    then object -- exactly the column order of the historical
    ``np.unique(np.stack([procs, objs]), axis=1)`` aggregation, evaluated
    as one int64-key sort instead of numpy's slow void-dtype column
    comparison.  The speedup here is algorithmic, so this operation is
    deliberately **not** backend-dispatched: chunk aggregation behaves
    identically under every ``REPRO_BACKEND``.  The pre-encoding
    implementation is retained as
    ``StaticPlacementManager._reference_aggregate_chunk`` and pinned by a
    differential test.
    """
    procs = np.asarray(procs, dtype=np.int64)
    objs = np.asarray(objs, dtype=np.int64)
    if procs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    # object ids fit int32 (ensure_index_capacity) and so do processors,
    # hence proc * base + obj < 2**62: the key encoding cannot overflow.
    base = int(objs.max()) + 1
    key = procs * base + objs
    ukey, counts = np.unique(key, return_counts=True)
    return ukey // base, ukey % base, counts.astype(np.int64, copy=False)


# --------------------------------------------------------------------- #
# numpy reference implementations (the pre-backend vectorized code)
# --------------------------------------------------------------------- #
def _reference_lca(up, depth, u, v):
    """Binary-lifting LCA on flat int64 index arrays (clobbers ``u, v``)."""
    du = depth[u]
    dv = depth[v]
    diff = du - dv
    swap = diff < 0
    if np.any(swap):
        u[swap], v[swap] = v[swap], u[swap]
        diff = np.abs(diff)
    for k in range(up.shape[0]):
        sel = (diff >> k) & 1 == 1
        if np.any(sel):
            u[sel] = up[k][u[sel]]
    neq = u != v
    if np.any(neq):
        for k in range(up.shape[0] - 1, -1, -1):
            upu = up[k][u]
            upv = up[k][v]
            step = neq & (upu != upv)
            if np.any(step):
                u[step] = upu[step]
                v[step] = upv[step]
        u[neq] = up[0][u[neq]]
    return u


def _reference_scatter_paths(out, rp_edges, rp_nodes, rp_indptr, delta):
    np.add.at(out, rp_edges, delta[rp_nodes])


def _reference_pair_scatter(delta, u, v, anc, w):
    np.add.at(delta, u, w)
    np.add.at(delta, v, w)
    np.add.at(delta, anc, -2.0 * w)


def _reference_pair_scatter_lanes(delta, u, targets, anc, w):
    n_lanes = targets.shape[1]
    lanes = np.broadcast_to(np.arange(n_lanes, dtype=np.int64), targets.shape)
    srcs = np.broadcast_to(u[:, None], targets.shape)
    wcol = np.broadcast_to(w[:, None], targets.shape)
    np.add.at(delta, (srcs, lanes), wcol)
    np.add.at(delta, (targets, lanes), wcol)
    np.add.at(delta, (anc, lanes), -2.0 * wcol)


def _reference_bus_fold(out, edge_u, edge_v, is_bus, vec):
    np.add.at(out, edge_u, vec)
    np.add.at(out, edge_v, vec)
    out[~is_bus] = 0.0


def _reference_apply_column(loads, vec, edge_u, edge_v, is_bus, n_edges, sign):
    if sign >= 0:
        loads[:n_edges] += vec
    else:
        loads[:n_edges] -= vec
    bus2 = np.zeros(loads.size - n_edges, dtype=np.float64)
    np.add.at(bus2, edge_u, vec)
    np.add.at(bus2, edge_v, vec)
    bus2[~is_bus] = 0.0
    if sign >= 0:
        loads[n_edges:] += bus2
    else:
        loads[n_edges:] -= bus2
    return not bool(np.all(vec >= 0))


def _reference_apply_columns_lanes(loads, lanes, cols, edge_u, edge_v, is_bus, n_edges):
    loads[lanes, :n_edges] += cols.T
    bus2 = np.zeros((loads.shape[1] - n_edges, lanes.size), dtype=np.float64)
    np.add.at(bus2, edge_u, cols)
    np.add.at(bus2, edge_v, cols)
    bus2[~is_bus] = 0.0
    loads[lanes, n_edges:] += bus2.T
    return ~np.all(cols >= 0, axis=0)


def _reference_rescan(loads, denom):
    return float((loads / denom).max())


def _reference_rescan_rows(loads, rows, denom):
    return (loads[rows] / denom).max(axis=1)


_NUMPY_OPS: Dict[str, Callable] = {
    "lca": _reference_lca,
    "scatter_paths": _reference_scatter_paths,
    "pair_scatter": _reference_pair_scatter,
    "pair_scatter_lanes": _reference_pair_scatter_lanes,
    "bus_fold": _reference_bus_fold,
    "apply_column": _reference_apply_column,
    "apply_columns_lanes": _reference_apply_columns_lanes,
    "rescan": _reference_rescan,
    "rescan_rows": _reference_rescan_rows,
}


# --------------------------------------------------------------------- #
# cc backend: embedded C source, compiled once and cached by source hash
# --------------------------------------------------------------------- #
# No -ffast-math anywhere: additions must keep IEEE semantics so the
# integer-exactness argument of invariant 9 carries over unchanged.
_C_SOURCE = r"""
#include <stdint.h>

void repro_lca(const int32_t *up, int64_t levels, int64_t n,
               const int64_t *depth, const int64_t *u, const int64_t *v,
               int64_t m, int64_t *out)
{
    int64_t i, k;
    for (i = 0; i < m; i++) {
        int64_t a = u[i], b = v[i];
        int64_t da = depth[a], db = depth[b];
        int64_t diff;
        if (da < db) {
            int64_t t = a; a = b; b = t;
            t = da; da = db; db = t;
        }
        diff = da - db;
        for (k = 0; diff != 0; k++, diff >>= 1) {
            if (diff & 1)
                a = up[k * n + a];
        }
        if (a != b) {
            for (k = levels - 1; k >= 0; k--) {
                int32_t ua = up[k * n + a], ub = up[k * n + b];
                if (ua != ub) { a = ua; b = ub; }
            }
            a = up[a];
        }
        out[i] = a;
    }
}

/* Zero-skip CSR scatter.  Nodes whose delta is (+/-)0.0 are skipped
 * entirely: x + 0.0 == x bitwise unless x is -0.0, and the substrate's
 * accumulators start at +0.0 and only ever receive IEEE additions, which
 * can never produce -0.0 from a +0.0 start ((+0)+(-0) rounds to +0).
 * Skipping therefore preserves bit-for-bit equality with the reference
 * full-table scatter while making sparse-delta scatters (the replay
 * inner loop) active-path-bound instead of CSR-size-bound. */
void repro_scatter_paths(double *out, const int32_t *rp_edges,
                         const int64_t *rp_indptr, const double *delta,
                         int64_t n_nodes)
{
    int64_t v, t;
    for (v = 0; v < n_nodes; v++) {
        double d = delta[v];
        if (d != 0.0) {
            int64_t end = rp_indptr[v + 1];
            for (t = rp_indptr[v]; t < end; t++)
                out[rp_edges[t]] += d;
        }
    }
}

void repro_scatter_paths_cols(double *out, const int32_t *rp_edges,
                              const int64_t *rp_indptr, const double *delta,
                              int64_t n_nodes, int64_t ncols)
{
    int64_t v, t, c;
    for (v = 0; v < n_nodes; v++) {
        const double *d = delta + v * ncols;
        int nonzero = 0;
        for (c = 0; c < ncols; c++)
            if (d[c] != 0.0) { nonzero = 1; break; }
        if (nonzero) {
            int64_t end = rp_indptr[v + 1];
            for (t = rp_indptr[v]; t < end; t++) {
                double *o = out + (int64_t)rp_edges[t] * ncols;
                for (c = 0; c < ncols; c++)
                    o[c] += d[c];
            }
        }
    }
}

void repro_pair_scatter(double *delta, const int64_t *u, const int64_t *v,
                        const int64_t *anc, const double *w, int64_t m)
{
    int64_t i;
    for (i = 0; i < m; i++) {
        delta[u[i]] += w[i];
        delta[v[i]] += w[i];
        delta[anc[i]] -= 2.0 * w[i];
    }
}

void repro_pair_scatter_lanes(double *delta, const int64_t *u,
                              const int64_t *targets, const int64_t *anc,
                              const double *w, int64_t m, int64_t lanes)
{
    int64_t i, k;
    for (i = 0; i < m; i++) {
        double wi = w[i], w2 = 2.0 * wi;
        double *du = delta + u[i] * lanes;
        const int64_t *trow = targets + i * lanes;
        const int64_t *arow = anc + i * lanes;
        for (k = 0; k < lanes; k++) {
            du[k] += wi;
            delta[trow[k] * lanes + k] += wi;
            delta[arow[k] * lanes + k] -= w2;
        }
    }
}

void repro_bus_fold(double *out, const int32_t *edge_u, const int32_t *edge_v,
                    const uint8_t *is_bus, const double *vec,
                    int64_t n_edges, int64_t n_nodes)
{
    int64_t e, i;
    for (e = 0; e < n_edges; e++) {
        out[edge_u[e]] += vec[e];
        out[edge_v[e]] += vec[e];
    }
    for (i = 0; i < n_nodes; i++)
        if (!is_bus[i])
            out[i] = 0.0;
}

void repro_bus_fold_cols(double *out, const int32_t *edge_u,
                         const int32_t *edge_v, const uint8_t *is_bus,
                         const double *cols, int64_t n_edges,
                         int64_t n_nodes, int64_t ncols)
{
    int64_t e, i, c;
    for (e = 0; e < n_edges; e++) {
        const double *row = cols + e * ncols;
        double *bu = out + (int64_t)edge_u[e] * ncols;
        double *bv = out + (int64_t)edge_v[e] * ncols;
        for (c = 0; c < ncols; c++) {
            bu[c] += row[c];
            bv[c] += row[c];
        }
    }
    for (i = 0; i < n_nodes; i++)
        if (!is_bus[i])
            for (c = 0; c < ncols; c++)
                out[i * ncols + c] = 0.0;
}

int32_t repro_apply_column(double *loads, const double *vec,
                           const int32_t *edge_u, const int32_t *edge_v,
                           const uint8_t *is_bus, int64_t n_edges,
                           double sign)
{
    /* x == 0.0 entries are skipped: the fused accumulator starts at +0.0
     * and IEEE add/sub chains cannot produce -0.0 there, so adding or
     * subtracting a (+/-)0.0 is an exact no-op (the zero-skip argument of
     * repro_scatter_paths); the flag is unchanged because (+/-)0.0 >= 0. */
    int64_t e;
    int32_t any_neg = 0;
    double *node_block = loads + n_edges;
    if (sign >= 0.0) {
        for (e = 0; e < n_edges; e++) {
            double x = vec[e];
            if (!(x >= 0.0))
                any_neg = 1;
            if (x != 0.0) {
                loads[e] += x;
                if (is_bus[edge_u[e]]) node_block[edge_u[e]] += x;
                if (is_bus[edge_v[e]]) node_block[edge_v[e]] += x;
            }
        }
    } else {
        for (e = 0; e < n_edges; e++) {
            double x = vec[e];
            if (!(x >= 0.0))
                any_neg = 1;
            if (x != 0.0) {
                loads[e] -= x;
                if (is_bus[edge_u[e]]) node_block[edge_u[e]] -= x;
                if (is_bus[edge_v[e]]) node_block[edge_v[e]] -= x;
            }
        }
    }
    return any_neg;
}

void repro_apply_columns_lanes(double *loads, int64_t row_len,
                               const int64_t *lanes, int64_t n_lanes,
                               const double *cols, const int32_t *edge_u,
                               const int32_t *edge_v, const uint8_t *is_bus,
                               int64_t n_edges, uint8_t *neg_out)
{
    int64_t j, e;
    for (j = 0; j < n_lanes; j++) {
        double *row = loads + lanes[j] * row_len;
        double *node_block = row + n_edges;
        uint8_t neg = 0;
        for (e = 0; e < n_edges; e++) {
            double x = cols[e * n_lanes + j];
            if (!(x >= 0.0))
                neg = 1;
            row[e] += x;
            if (is_bus[edge_u[e]]) node_block[edge_u[e]] += x;
            if (is_bus[edge_v[e]]) node_block[edge_v[e]] += x;
        }
        neg_out[j] = neg;
    }
}

/* Four running maxima break the loop-carried dependence so the divisions
 * vectorize; a maximum is an exact selection over the same quotient set,
 * so the lane split cannot change the (non-NaN) result. */
static double repro_rescan_one(const double *loads, const double *denom,
                               int64_t n)
{
    int64_t i;
    double b0 = loads[0] / denom[0], b1 = b0, b2 = b0, b3 = b0;
    for (i = 1; i + 3 < n; i += 4) {
        double v0 = loads[i] / denom[i];
        double v1 = loads[i + 1] / denom[i + 1];
        double v2 = loads[i + 2] / denom[i + 2];
        double v3 = loads[i + 3] / denom[i + 3];
        if (v0 > b0) b0 = v0;
        if (v1 > b1) b1 = v1;
        if (v2 > b2) b2 = v2;
        if (v3 > b3) b3 = v3;
    }
    for (; i < n; i++) {
        double v = loads[i] / denom[i];
        if (v > b0) b0 = v;
    }
    if (b1 > b0) b0 = b1;
    if (b2 > b0) b0 = b2;
    if (b3 > b0) b0 = b3;
    return b0;
}

double repro_rescan(const double *loads, const double *denom, int64_t n)
{
    return repro_rescan_one(loads, denom, n);
}

void repro_rescan_rows(const double *loads, int64_t row_len,
                       const int64_t *rows, int64_t n_rows,
                       const double *denom, double *out)
{
    int64_t j;
    for (j = 0; j < n_rows; j++)
        out[j] = repro_rescan_one(loads + rows[j] * row_len, denom, row_len);
}
"""


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate:
            found = shutil.which(candidate)
            if found:
                return found
    return None


def _load_cc_library() -> ctypes.CDLL:
    """Compile (once, disk-cached by source hash) and load the C kernels."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = os.environ.get("REPRO_KERNEL_CACHE")
    if cache:
        base = Path(cache)
    else:
        uid = getattr(os, "getuid", lambda: 0)()
        base = Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"
    base.mkdir(parents=True, exist_ok=True)
    lib_path = base / f"repro_kernels_{digest}.so"
    if not lib_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            raise AlgorithmError("no C compiler found for the cc kernel backend")
        src_path = base / f"repro_kernels_{digest}.c"
        src_path.write_text(_C_SOURCE)
        tmp_path = base / f".repro_kernels_{digest}.{os.getpid()}.so"
        subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", str(tmp_path), str(src_path)],
            check=True,
            capture_output=True,
        )
        os.replace(tmp_path, lib_path)  # atomic under concurrent builders
    return ctypes.CDLL(str(lib_path))


def _bind_cc_ops(lib: ctypes.CDLL) -> Dict[str, Callable]:
    ndp = np.ctypeslib.ndpointer
    f64 = ndp(dtype=np.float64, flags="C_CONTIGUOUS")
    i64 = ndp(dtype=np.int64, flags="C_CONTIGUOUS")
    i32 = ndp(dtype=np.int32, flags="C_CONTIGUOUS")
    u8 = ndp(dtype=np.uint8, flags="C_CONTIGUOUS")
    c64 = ctypes.c_int64

    lib.repro_lca.argtypes = [i32, c64, c64, i64, i64, i64, c64, i64]
    lib.repro_lca.restype = None
    lib.repro_scatter_paths.argtypes = [f64, i32, i64, f64, c64]
    lib.repro_scatter_paths.restype = None
    lib.repro_scatter_paths_cols.argtypes = [f64, i32, i64, f64, c64, c64]
    lib.repro_scatter_paths_cols.restype = None
    lib.repro_pair_scatter.argtypes = [f64, i64, i64, i64, f64, c64]
    lib.repro_pair_scatter.restype = None
    lib.repro_pair_scatter_lanes.argtypes = [f64, i64, i64, i64, f64, c64, c64]
    lib.repro_pair_scatter_lanes.restype = None
    lib.repro_bus_fold.argtypes = [f64, i32, i32, u8, f64, c64, c64]
    lib.repro_bus_fold.restype = None
    lib.repro_bus_fold_cols.argtypes = [f64, i32, i32, u8, f64, c64, c64, c64]
    lib.repro_bus_fold_cols.restype = None
    lib.repro_apply_column.argtypes = [f64, f64, i32, i32, u8, c64, ctypes.c_double]
    lib.repro_apply_column.restype = ctypes.c_int32
    lib.repro_apply_columns_lanes.argtypes = [
        f64, c64, i64, c64, f64, i32, i32, u8, c64, u8,
    ]
    lib.repro_apply_columns_lanes.restype = None
    lib.repro_rescan.argtypes = [f64, f64, c64]
    lib.repro_rescan.restype = ctypes.c_double
    lib.repro_rescan_rows.argtypes = [f64, c64, i64, c64, f64, f64]
    lib.repro_rescan_rows.restype = None

    def cc_lca(up, depth, u, v):
        out = np.empty(u.size, dtype=np.int64)
        if u.size:
            lib.repro_lca(up, up.shape[0], up.shape[1], depth, u, v, u.size, out)
        return out

    def cc_scatter_paths(out, rp_edges, rp_nodes, rp_indptr, delta):
        n_nodes = rp_indptr.size - 1
        if out.ndim == 1:
            lib.repro_scatter_paths(out, rp_edges, rp_indptr, delta, n_nodes)
        else:
            ncols = int(np.prod(out.shape[1:]))
            lib.repro_scatter_paths_cols(
                out, rp_edges, rp_indptr, delta, n_nodes, ncols
            )

    def cc_pair_scatter(delta, u, v, anc, w):
        lib.repro_pair_scatter(delta, u, v, anc, w, u.size)

    def cc_pair_scatter_lanes(delta, u, targets, anc, w):
        lib.repro_pair_scatter_lanes(
            delta, u, targets, anc, w, u.size, targets.shape[1]
        )

    def cc_bus_fold(out, edge_u, edge_v, is_bus, vec):
        mask = is_bus.view(np.uint8)
        if out.ndim == 1:
            lib.repro_bus_fold(
                out, edge_u, edge_v, mask, vec, edge_u.size, out.shape[0]
            )
        else:
            ncols = int(np.prod(out.shape[1:]))
            lib.repro_bus_fold_cols(
                out, edge_u, edge_v, mask, vec, edge_u.size, out.shape[0], ncols
            )

    def cc_apply_column(loads, vec, edge_u, edge_v, is_bus, n_edges, sign):
        return bool(
            lib.repro_apply_column(
                loads, vec, edge_u, edge_v, is_bus.view(np.uint8), n_edges, sign
            )
        )

    def cc_apply_columns_lanes(loads, lanes, cols, edge_u, edge_v, is_bus, n_edges):
        neg = np.zeros(lanes.size, dtype=np.uint8)
        lib.repro_apply_columns_lanes(
            loads,
            loads.shape[1],
            lanes,
            lanes.size,
            cols,
            edge_u,
            edge_v,
            is_bus.view(np.uint8),
            n_edges,
            neg,
        )
        return neg.view(bool)

    def cc_rescan(loads, denom):
        return float(lib.repro_rescan(loads, denom, loads.size))

    def cc_rescan_rows(loads, rows, denom):
        out = np.empty(rows.size, dtype=np.float64)
        if rows.size:
            lib.repro_rescan_rows(
                loads, loads.shape[1], rows, rows.size, denom, out
            )
        return out

    return {
        "lca": cc_lca,
        "scatter_paths": cc_scatter_paths,
        "pair_scatter": cc_pair_scatter,
        "pair_scatter_lanes": cc_pair_scatter_lanes,
        "bus_fold": cc_bus_fold,
        "apply_column": cc_apply_column,
        "apply_columns_lanes": cc_apply_columns_lanes,
        "rescan": cc_rescan,
        "rescan_rows": cc_rescan_rows,
    }


def _try_build_cc() -> Optional[Dict[str, Callable]]:
    try:
        return _bind_cc_ops(_load_cc_library())
    except Exception:
        return None


def _try_build_numba() -> Optional[Dict[str, Callable]]:
    try:
        from repro.core import _numba_kernels
    except Exception:
        return None
    return _numba_kernels.OPS


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #
_forced: Optional[str] = None
_ops_cache: Dict[str, Optional[Dict[str, Callable]]] = {}
_resolved: Tuple[object, str] = (object(), "")


def _ops_for(name: str) -> Optional[Dict[str, Callable]]:
    if name not in _ops_cache:
        if name == "numpy":
            _ops_cache[name] = _NUMPY_OPS
        elif name == "cc":
            _ops_cache[name] = _try_build_cc()
        elif name == "numba":
            _ops_cache[name] = _try_build_numba()
        else:
            raise AlgorithmError(
                f"unknown kernel backend {name!r}: expected one of "
                f"{', '.join(BACKENDS)} or 'auto'"
            )
    return _ops_cache[name]


def available_backends() -> Tuple[str, ...]:
    """The kernel backends usable in this environment (numpy always is)."""
    return tuple(name for name in BACKENDS if _ops_for(name) is not None)


def active_backend() -> str:
    """The backend the kernel dispatch currently resolves to.

    Resolution order: :func:`set_backend` override, then ``REPRO_BACKEND``,
    then auto-detection (numba, cc, numpy -- first available).  An
    explicitly requested backend that is unavailable raises
    :class:`~repro.errors.AlgorithmError` rather than silently degrading.
    """
    global _resolved
    key = (_forced, os.environ.get("REPRO_BACKEND"))
    if _resolved[0] == key:
        return _resolved[1]
    requested = _forced
    if requested is None:
        requested = (os.environ.get("REPRO_BACKEND") or "auto").strip().lower()
        requested = requested or "auto"
    if requested == "auto":
        name = available_backends()[0]
    else:
        if requested not in BACKENDS:
            raise AlgorithmError(
                f"unknown kernel backend {requested!r}: expected one of "
                f"{', '.join(BACKENDS)} or 'auto'"
            )
        if _ops_for(requested) is None:
            raise AlgorithmError(
                f"kernel backend {requested!r} was requested but is not "
                "available in this environment (numba not installed / no C "
                "compiler); unset REPRO_BACKEND or choose 'numpy'"
            )
        name = requested
    _resolved = (key, name)
    return name


def set_backend(name: Optional[str]) -> None:
    """Force a backend at runtime (``None`` restores ``REPRO_BACKEND``/auto)."""
    global _forced
    _forced = name
    if name is not None:
        active_backend()  # validate eagerly


@contextmanager
def use_backend(name: Optional[str]):
    """Context manager form of :func:`set_backend` (restores on exit)."""
    global _forced
    previous = _forced
    set_backend(name)
    try:
        yield
    finally:
        _forced = previous


def _op(name: str) -> Callable:
    ops = _ops_for(active_backend())
    assert ops is not None  # active_backend() only returns available ones
    return ops[name]


# --------------------------------------------------------------------- #
# dispatched operations
# --------------------------------------------------------------------- #
def lca(up: np.ndarray, depth: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Batched binary-lifting LCA over flat index arrays.

    ``up`` is the ``(levels, n)`` int32 ancestor table, ``depth`` the int64
    per-node depths; ``u`` and ``v`` must be freshly-allocated contiguous
    int64 arrays of equal size (implementations may clobber them).  Returns
    a flat int64 ancestor array.
    """
    return _op("lca")(up, depth, u, v)


def scatter_paths(
    out: np.ndarray,
    rp_edges: np.ndarray,
    rp_nodes: np.ndarray,
    rp_indptr: np.ndarray,
    delta: np.ndarray,
) -> None:
    """CSR root-path scatter: ``out[rp_edges[t]] += delta[rp_nodes[t]]``.

    ``out`` and ``delta`` are C-contiguous float64, either 1-D or row-major
    batched (``(n_edges, B)`` / ``(n_nodes, B)``); mutated in place.
    ``rp_nodes`` (per-entry node ids, the reference gather) and
    ``rp_indptr`` (per-node entry ranges, the compiled zero-skip walk) are
    two views of the same CSR structure and must stay consistent.

    Compiled backends skip nodes whose delta row is entirely zero.  This
    is bitwise-identical to the reference full-table scatter for every
    substrate caller: ``out`` accumulators start at +0.0 and IEEE
    addition can never turn +0.0 into -0.0, so the skipped ``x += 0.0``
    operations are exact no-ops (callers must not pass ``out`` buffers
    containing -0.0 entries -- no substrate path does).
    """
    _op("scatter_paths")(out, rp_edges, rp_nodes, rp_indptr, delta)


def pair_scatter(
    delta: np.ndarray, u: np.ndarray, v: np.ndarray, anc: np.ndarray, w: np.ndarray
) -> None:
    """Scatter pair node-deltas: ``+w`` at ``u, v``, ``-2w`` at ``anc``."""
    _op("pair_scatter")(delta, u, v, anc, w)


def pair_scatter_lanes(
    delta: np.ndarray,
    u: np.ndarray,
    targets: np.ndarray,
    anc: np.ndarray,
    w: np.ndarray,
) -> None:
    """Per-lane pair node-delta scatter into ``delta`` of shape ``(n, L)``."""
    _op("pair_scatter_lanes")(delta, u, targets, anc, w)


def bus_fold(
    out: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    is_bus: np.ndarray,
    vec: np.ndarray,
) -> None:
    """Fold per-edge loads onto both endpoints, zeroing non-bus rows."""
    _op("bus_fold")(out, edge_u, edge_v, is_bus, vec)


def apply_column(
    loads: np.ndarray,
    vec: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    is_bus: np.ndarray,
    n_edges: int,
    sign: float,
) -> bool:
    """Fused apply of one per-edge column onto a 1-D fused load array.

    Adds (``sign >= 0``) or subtracts the edge block and the folded bus
    block in one pass; returns whether any entry of ``vec`` fails
    ``>= 0`` (the staleness trigger of the running-max congestion).
    """
    return _op("apply_column")(loads, vec, edge_u, edge_v, is_bus, n_edges, sign)


def apply_columns_lanes(
    loads: np.ndarray,
    lanes: np.ndarray,
    cols: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    is_bus: np.ndarray,
    n_edges: int,
) -> np.ndarray:
    """Fused lane-broadcast apply of ``(n_edges, L)`` columns onto lane rows.

    Returns the per-lane "any negative entry" bool array.
    """
    return _op("apply_columns_lanes")(
        loads, lanes, cols, edge_u, edge_v, is_bus, n_edges
    )


def rescan(loads: np.ndarray, denom: np.ndarray) -> float:
    """Running-max repair: ``max(loads / denom)`` over one fused array."""
    return _op("rescan")(loads, denom)


def rescan_rows(loads: np.ndarray, rows: np.ndarray, denom: np.ndarray) -> np.ndarray:
    """Per-row fused rescan over selected lane rows of a stacked array."""
    return _op("rescan_rows")(loads, rows, denom)
