"""Core algorithms: placements, cost model, the extended-nibble strategy,
baselines, exact solvers and lower bounds."""

from repro.core.placement import Placement, RequestAssignment, Share
from repro.core.congestion import (
    LoadProfile,
    compute_loads,
    congestion,
    object_edge_loads,
    total_communication_load,
)
from repro.core.loadstate import LaneState, LoadSnapshot, LoadState, StackedLoadState
from repro.core.nibble import (
    NibbleResult,
    center_of_gravity,
    gravity_candidates,
    nibble_holders_for_object,
    nibble_placement,
)
from repro.core.deletion import (
    CopyRecord,
    ObjectCopies,
    RefinementResult,
    apply_deletion,
    copies_to_placement,
    delete_rarely_used_copies,
    refine_copies,
)
from repro.core.mapping import MappingResult, directed_basic_loads, map_copies_to_leaves
from repro.core.extended_nibble import ExtendedNibbleResult, StepTimings, extended_nibble
from repro.core.baselines import (
    full_replication_placement,
    greedy_congestion_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.optimal import (
    OptimalResult,
    optimal_nonredundant,
    optimal_redundant,
    placement_decision,
)
from repro.core.bounds import (
    LowerBoundReport,
    congestion_lower_bound,
    contention_lower_bound,
    nibble_lower_bound,
    per_edge_lower_bounds,
)

__all__ = [
    "Placement",
    "RequestAssignment",
    "Share",
    "LoadProfile",
    "compute_loads",
    "congestion",
    "object_edge_loads",
    "total_communication_load",
    "LoadState",
    "LoadSnapshot",
    "StackedLoadState",
    "LaneState",
    "NibbleResult",
    "center_of_gravity",
    "gravity_candidates",
    "nibble_holders_for_object",
    "nibble_placement",
    "CopyRecord",
    "ObjectCopies",
    "RefinementResult",
    "apply_deletion",
    "delete_rarely_used_copies",
    "copies_to_placement",
    "refine_copies",
    "MappingResult",
    "map_copies_to_leaves",
    "directed_basic_loads",
    "ExtendedNibbleResult",
    "StepTimings",
    "extended_nibble",
    "owner_placement",
    "median_leaf_placement",
    "greedy_congestion_placement",
    "random_placement",
    "full_replication_placement",
    "OptimalResult",
    "optimal_nonredundant",
    "optimal_redundant",
    "placement_decision",
    "LowerBoundReport",
    "nibble_lower_bound",
    "per_edge_lower_bounds",
    "contention_lower_bound",
    "congestion_lower_bound",
]
