"""Sparse path-incidence structure for vectorized congestion evaluation.

The cost model charges every request pair ``(u, v)`` one load unit on each
edge of the tree path between ``u`` and ``v``.  Evaluating this with Python
loops over objects × requesters × path edges is the dominant cost of every
experiment; :class:`PathMatrix` replaces those loops with a precomputed
sparse incidence structure and a handful of scatter/gather kernels.

The structure exploits a classical identity on trees rooted at ``r``.  Let
``R(v)`` be the set of edges on the path ``r -> v`` ("root path").  Then

* the path ``u -> v`` is the symmetric difference ``R(u) Δ R(v)``, so a
  pair load ``w`` on path ``u -> v`` equals a *node delta* of ``+w`` at
  ``u``, ``+w`` at ``v`` and ``-2w`` at ``lca(u, v)`` pushed down the root
  paths: ``edge_load[e] = Σ_v  delta[v] · [e ∈ R(v)]``;
* the same operator evaluated on a 0/1 membership vector of a terminal set
  ``S`` yields, per edge, the number of terminals strictly below that edge
  -- which identifies the Steiner tree of ``S`` (``0 < below < |S|``).

The incidence ``[e ∈ R(v)]`` is stored once per rooted network as CSR-style
arrays (``indptr`` / ``edge id`` / ``node id`` triples, total size
``Σ_v depth(v)``), and all evaluations run through the backend-dispatched
kernels of :mod:`repro.core.kernels` -- compiled scatter loops when a
compiled backend is active, ``np.add.at`` scatters under the numpy
reference, bit-for-bit identical either way (ARCHITECTURE.md invariant 9).
Batched right-hand sides (one column per candidate placement or per
object) turn into a single scatter over 2-D arrays, which is what makes
whole-suite experiments on networks 10-100× larger than the seed sizes
feasible.

LCAs are computed for whole index arrays at once by binary lifting over a
``(log2(height), n)`` ancestor table.  The id-valued tables (lifting rows,
CSR edge/node ids, edge endpoints) are stored as int32
(:data:`repro.core.kernels.INDEX_DTYPE`) so 10^5-10^6-leaf networks fit in
memory; :func:`repro.core.kernels.ensure_index_capacity` raises
:class:`~repro.errors.CapacityError` -- it never wraps -- when a network
would overflow that range.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.errors import InvalidNodeError

__all__ = ["PathMatrix"]

_INDEX = kernels.INDEX_DTYPE


class PathMatrix:
    """Vectorized path/Steiner/distance kernels for one rooted tree.

    Instances are cheap relative to a single scalar congestion evaluation
    (``O(n · height)`` ints) and are cached per rooted view via
    :meth:`repro.network.rooted.RootedTree.path_matrix`.
    """

    __slots__ = (
        "rooted",
        "n_nodes",
        "n_edges",
        "_parent",
        "_parent_edge",
        "_depth",
        "_up",
        "_rp_indptr",
        "_rp_edges",
        "_rp_nodes",
        "_edge_u",
        "_edge_v",
        "_bus_mask",
    )

    # Block size (in pair entries) of the on-demand distance evaluation:
    # bounds the LCA scratch arrays of arbitrarily large distance queries
    # to a few MiB instead of materialising an O(n^2) all-pairs matrix.
    _DIST_BLOCK = 1 << 20

    def __init__(self, rooted) -> None:
        network = rooted.network
        n = network.n_nodes
        self.rooted = rooted
        self.n_nodes = n
        self.n_edges = network.n_edges

        parent = np.array([rooted.parent(v) for v in range(n)], dtype=np.int64)
        parent_edge = np.array(
            [rooted.parent_edge_id(v) for v in range(n)], dtype=np.int64
        )
        depth = np.array([rooted.depth(v) for v in range(n)], dtype=np.int64)
        self._parent = parent
        self._parent_edge = parent_edge
        self._depth = depth

        total = int(depth.sum())
        kernels.ensure_index_capacity(n, network.n_edges, total)

        # Binary-lifting ancestor table: _up[k, v] = 2^k-th ancestor of v
        # (the root is its own ancestor, so lifts saturate instead of
        # underflowing to -1).
        levels = self._lift_levels(int(depth.max()))
        up = np.empty((levels, n), dtype=_INDEX)
        up[0] = np.where(parent >= 0, parent, np.arange(n))
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        self._up = up

        # CSR root-path incidence: for every node v (in depth order is not
        # required), the edge ids on the path root -> v.  rp_nodes repeats v
        # once per such edge so a gather delta[rp_nodes] aligns with rp_edges.
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(depth)
        rp_edges = np.empty(total, dtype=_INDEX)
        rp_nodes = np.empty(total, dtype=_INDEX)
        for v in rooted.preorder:
            p = parent[v]
            if p < 0:
                continue
            start, end = indptr[v], indptr[v + 1]
            pstart, pend = indptr[p], indptr[p + 1]
            rp_edges[start : end - 1] = rp_edges[pstart:pend]
            rp_edges[end - 1] = parent_edge[v]
            rp_nodes[start:end] = v
        self._rp_indptr = indptr
        self._rp_edges = rp_edges
        self._rp_nodes = rp_nodes

        edges = network.edges
        self._edge_u = np.array([e.u for e in edges], dtype=_INDEX)
        self._edge_v = np.array([e.v for e in edges], dtype=_INDEX)
        bus_mask = np.zeros(n, dtype=bool)
        if network.buses:
            bus_mask[list(network.buses)] = True
        self._bus_mask = bus_mask

    # ------------------------------------------------------------------ #
    # incremental repair after topology mutations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift_levels(max_depth: int) -> int:
        """Row count of the binary-lifting table (single source of truth)."""
        return max(1, int(np.ceil(np.log2(max(2, max_depth + 1)))) + 1)

    def repaired(self, outcome, rooted) -> "PathMatrix":
        """Path matrix for ``rooted`` (a repaired view), derived from this one.

        The repaired instance is bit-for-bit identical to
        ``PathMatrix(rooted)`` -- same CSR root-path incidence, lifting
        table and endpoint arrays -- but the CSR is patched with vectorized
        array surgery (append for attach, one masked copy for detach, one
        shifted copy with the trunk edge spliced in for split) instead of
        the O(n · height) per-node construction loop.  The result is
        installed as ``rooted``'s cached path matrix.
        """
        from repro.network.mutation import AttachLeaf, DetachLeaf, SplitBus

        if rooted._path_matrix is not None:
            return rooted._path_matrix
        network = rooted.network
        new = object.__new__(PathMatrix)
        new.rooted = rooted
        new.n_nodes = network.n_nodes
        new.n_edges = network.n_edges
        new._parent = rooted._parent
        new._parent_edge = rooted._parent_edge
        new._depth = rooted._depth

        mutation = outcome.mutation
        if outcome.structural:
            # growth mutations can push a network across the int32 range:
            # guard before the surgery below writes any index table
            kernels.ensure_index_capacity(
                new.n_nodes, new.n_edges, int(np.asarray(new._depth).sum())
            )
        if not outcome.structural:
            new._up = self._up
            new._rp_indptr = self._rp_indptr
            new._rp_edges = self._rp_edges
            new._rp_nodes = self._rp_nodes
            new._edge_u = self._edge_u
            new._edge_v = self._edge_v
            new._bus_mask = self._bus_mask
        elif isinstance(mutation, AttachLeaf):
            self._repair_attach(new, outcome)
        elif isinstance(mutation, DetachLeaf):
            self._repair_detach(new, outcome)
        elif isinstance(mutation, SplitBus):
            if int(self._parent[outcome.touched_bus]) in outcome.moved_nodes:
                # Mirror RootedTree._repaired_split's fallback: for a view
                # rooted inside a moved subtree the split changes the
                # structure above the bus and the CSR surgery below does
                # not apply -- build fresh.
                return rooted.path_matrix()
            self._repair_split(new, outcome)
        else:  # future mutation kinds: fall back to a fresh construction
            return rooted.path_matrix()
        rooted._path_matrix = new
        return new

    def _repair_up_full(self, new: "PathMatrix", levels: int) -> None:
        """Vectorized lifting-table rebuild (log passes, no Python loops)."""
        n = new.n_nodes
        up = np.empty((levels, n), dtype=_INDEX)
        up[0] = np.where(new._parent >= 0, new._parent, np.arange(n))
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        new._up = up

    def _repair_attach(self, new: "PathMatrix", outcome) -> None:
        bus = int(outcome.touched_bus)
        w = int(outcome.new_node)
        f = int(outcome.new_edge)
        depth = new._depth
        dw = int(depth[w])

        levels = self._lift_levels(int(depth.max()))
        if levels == self._up.shape[0]:
            col = np.empty(levels, dtype=_INDEX)
            col[0] = bus
            for k in range(1, levels):
                col[k] = self._up[k - 1][col[k - 1]]
            new._up = np.concatenate([self._up, col[:, None]], axis=1)
        else:
            self._repair_up_full(new, levels)

        bus_path = self._rp_edges[self._rp_indptr[bus] : self._rp_indptr[bus + 1]]
        new._rp_edges = np.concatenate(
            [self._rp_edges, bus_path, np.asarray([f], dtype=_INDEX)]
        )
        new._rp_nodes = np.concatenate(
            [self._rp_nodes, np.full(dw, w, dtype=_INDEX)]
        )
        new._rp_indptr = np.append(self._rp_indptr, self._rp_indptr[-1] + dw)
        new._edge_u = np.append(self._edge_u, _INDEX(bus))
        new._edge_v = np.append(self._edge_v, _INDEX(w))
        new._bus_mask = np.append(self._bus_mask, False)

    def _repair_detach(self, new: "PathMatrix", outcome) -> None:
        p = int(outcome.removed_node)
        nm = outcome.node_map
        em = outcome.edge_map
        keep = nm >= 0
        depth = new._depth

        levels = self._lift_levels(int(depth.max()))
        # the masked gather comes out F-ordered; the lca kernel needs C order
        new._up = nm[self._up[:levels][:, keep]].astype(_INDEX, order="C")

        mask = np.ones(self._rp_edges.shape[0], dtype=bool)
        mask[self._rp_indptr[p] : self._rp_indptr[p + 1]] = False
        new._rp_edges = em[self._rp_edges[mask]].astype(_INDEX)
        new._rp_nodes = nm[self._rp_nodes[mask]].astype(_INDEX)
        indptr = np.zeros(new.n_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(depth)
        new._rp_indptr = indptr

        ekeep = em >= 0
        new._edge_u = nm[self._edge_u[ekeep]].astype(_INDEX)
        new._edge_v = nm[self._edge_v[ekeep]].astype(_INDEX)
        new._bus_mask = self._bus_mask[keep]

    def _repair_split(self, new: "PathMatrix", outcome) -> None:
        b = int(outcome.touched_bus)
        w = int(outcome.new_node)
        f = int(outcome.new_edge)
        depth = new._depth
        n_old = self.n_nodes
        # nodes whose depth changed = the moved subtrees
        aff_mask = np.zeros(n_old, dtype=bool)
        aff_mask[depth[:n_old] != self._depth] = True

        levels = self._lift_levels(int(depth.max()))
        if levels == self._up.shape[0]:
            idx = np.concatenate(
                [np.flatnonzero(aff_mask), np.asarray([w], dtype=np.int64)]
            )
            up = np.concatenate(
                [self._up, np.empty((levels, 1), dtype=_INDEX)], axis=1
            )
            up[0, idx] = new._parent[idx]
            for k in range(1, levels):
                up[k, idx] = up[k - 1][up[k - 1, idx]]
            new._up = up
        else:
            self._repair_up_full(new, levels)

        indptr = np.zeros(new.n_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(depth)
        head_len = int(indptr[w])  # w has the largest id: its block is the tail
        rp_nodes = np.repeat(np.arange(new.n_nodes, dtype=_INDEX), depth)
        head_nodes = rp_nodes[:head_len]
        j = np.arange(head_len, dtype=np.int64) - indptr[head_nodes]
        db = int(self._depth[b])
        is_aff = aff_mask[head_nodes]
        trunk_pos = is_aff & (j == db)
        shift = (is_aff & (j > db)).astype(np.int64)
        src = self._rp_indptr[head_nodes] + j - shift
        head = np.empty(head_len, dtype=_INDEX)
        head[~trunk_pos] = self._rp_edges[src[~trunk_pos]]
        head[trunk_pos] = f
        b_path = self._rp_edges[self._rp_indptr[b] : self._rp_indptr[b + 1]]
        tail = np.concatenate([b_path, np.asarray([f], dtype=_INDEX)])
        new._rp_indptr = indptr
        new._rp_edges = np.concatenate([head, tail])
        new._rp_nodes = rp_nodes

        eu = self._edge_u.copy()
        ev = self._edge_v.copy()
        mids = np.asarray(outcome.moved_edge_ids, dtype=np.int64)
        ms = eu[mids] + ev[mids] - _INDEX(b)  # the moved endpoint of each edge
        eu[mids] = ms
        ev[mids] = w
        new._edge_u = np.append(eu, _INDEX(b))
        new._edge_v = np.append(ev, _INDEX(w))
        new._bus_mask = np.append(self._bus_mask, True)

    # ------------------------------------------------------------------ #
    # vectorized structural queries
    # ------------------------------------------------------------------ #
    @property
    def depths(self) -> np.ndarray:
        """Per-node depth array (root has depth 0)."""
        return self._depth

    def memory_bytes(self) -> int:
        """Total bytes held by the substrate arrays (the memory audit hook)."""
        arrays = (
            self._parent,
            self._parent_edge,
            self._depth,
            self._up,
            self._rp_indptr,
            self._rp_edges,
            self._rp_nodes,
            self._edge_u,
            self._edge_v,
            self._bus_mask,
        )
        return int(sum(a.nbytes for a in arrays))

    def lca(self, u, v) -> np.ndarray:
        """Lowest common ancestors of broadcastable index arrays ``u, v``."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        u, v = np.broadcast_arrays(u, v)
        shape = u.shape
        # flatten() always copies: the kernel may clobber its index inputs
        anc = kernels.lca(self._up, self._depth, u.flatten(), v.flatten())
        return anc.reshape(shape)

    def distances(self, u, v) -> np.ndarray:
        """Path lengths (edge counts) for broadcastable index arrays.

        Evaluated on demand in fixed-size blocks (``_DIST_BLOCK`` pair
        entries), so arbitrarily large queries -- the nearest-copy table
        builds gather ``(processors × holders)`` blocks -- never
        materialise more than a few MiB of LCA scratch space on top of the
        result itself.  Entries are identical to the unblocked evaluation
        (same LCA arithmetic), so blocking never changes results.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        u, v = np.broadcast_arrays(u, v)
        shape = u.shape
        uf = u.reshape(-1)
        vf = v.reshape(-1)
        m = uf.size
        depth = self._depth
        out = np.empty(m, dtype=np.int64)
        block = self._DIST_BLOCK
        for lo in range(0, m, block):
            hi = min(lo + block, m)
            ub = uf[lo:hi]
            vb = vf[lo:hi]
            anc = kernels.lca(self._up, depth, ub.flatten(), vb.flatten())
            out[lo:hi] = depth[ub] + depth[vb] - 2 * depth[anc]
        return out.reshape(shape)

    def nearest_in_set(
        self, nodes: np.ndarray, candidates: Sequence[int]
    ) -> np.ndarray:
        """For every node, the closest candidate (ties: smallest id).

        ``candidates`` must be non-empty; the result aligns with ``nodes``.
        """
        cands = np.asarray(sorted(set(int(c) for c in candidates)), dtype=np.int64)
        if cands.size == 0:
            raise InvalidNodeError("candidate set must not be empty")
        nodes = np.asarray(nodes, dtype=np.int64)
        dist = self.distances(nodes[:, None], cands[None, :])
        # argmin returns the first (= smallest-id, since cands is sorted) min
        return cands[np.argmin(dist, axis=1)]

    # ------------------------------------------------------------------ #
    # load kernels
    # ------------------------------------------------------------------ #
    def edge_loads_from_deltas(self, delta: np.ndarray) -> np.ndarray:
        """Apply the incidence operator: ``out[e] = Σ_v delta[v]·[e ∈ R(v)]``.

        ``delta`` has shape ``(n_nodes,)`` or ``(n_nodes, batch)``; the result
        has shape ``(n_edges,)`` / ``(n_edges, batch)`` accordingly.  For a
        node-delta encoding of path traffic this yields per-edge loads; for a
        0/1 terminal indicator it yields per-edge below-the-edge terminal
        counts (the Steiner-tree membership test).
        """
        delta = np.ascontiguousarray(delta, dtype=np.float64)
        out_shape = (self.n_edges,) + delta.shape[1:]
        out = np.zeros(out_shape, dtype=np.float64)
        if self._rp_edges.size:
            kernels.scatter_paths(
                out, self._rp_edges, self._rp_nodes, self._rp_indptr, delta
            )
        return out

    def pair_deltas(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """Node-delta vector encoding weighted path traffic ``u[i] -> v[i]``."""
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        w = np.ascontiguousarray(w, dtype=np.float64)
        delta = np.zeros(self.n_nodes, dtype=np.float64)
        if u.size:
            a = self.lca(u, v)
            kernels.pair_scatter(delta, u, v, a, w)
        return delta

    def pair_edge_loads(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> np.ndarray:
        """Per-edge loads of weighted request pairs ``u[i] -> v[i]``."""
        return self.edge_loads_from_deltas(self.pair_deltas(u, v, w))

    def pair_deltas_lanes(
        self,
        u: np.ndarray,
        targets: np.ndarray,
        w: np.ndarray,
        anc: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-lane node-delta columns for shared sources, per-lane targets.

        The fleet replay shape: every lane serves the same weighted request
        sources ``u`` (with weights ``w``), but lane ``k`` routes pair ``i``
        to its own target ``targets[i, k]``.  Column ``k`` of the result is
        exactly ``pair_deltas(u, targets[:, k], w)`` (integer-exact, so
        bit-for-bit), evaluated with one batched LCA pass and three 2-D
        scatters instead of K separate calls.  Callers that already hold
        ``lca(u[:, None], targets)`` (the fleet path derives its distance
        booking from the same ancestors) pass it as ``anc`` to avoid a
        second lifting pass.
        """
        u = np.ascontiguousarray(u, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        w = np.ascontiguousarray(w, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[0] != u.size:
            raise InvalidNodeError("targets must have shape (len(u), n_lanes)")
        n_lanes = targets.shape[1]
        delta = np.zeros((self.n_nodes, n_lanes), dtype=np.float64)
        if u.size == 0:
            return delta
        if anc is None:
            anc = self.lca(u[:, None], targets)
        anc = np.ascontiguousarray(anc, dtype=np.int64)
        kernels.pair_scatter_lanes(delta, u, targets, anc, w)
        return delta

    def pair_edge_loads_lanes(
        self,
        u: np.ndarray,
        targets: np.ndarray,
        w: np.ndarray,
        anc: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-lane edge-load columns ``(n_edges, n_lanes)`` (see above)."""
        return self.edge_loads_from_deltas(
            self.pair_deltas_lanes(u, targets, w, anc)
        )

    def steiner_edge_loads(
        self,
        terminal_sets: Sequence[Iterable[int]],
        weights: Sequence[float],
    ) -> np.ndarray:
        """Summed per-edge loads of weighted Steiner trees.

        For every terminal set ``S_i`` with weight ``w_i`` this adds ``w_i``
        to each edge of the minimal subtree spanning ``S_i`` (sets with fewer
        than two terminals contribute nothing).  All sets are evaluated in
        one batched scatter.
        """
        sets = [np.asarray(sorted(set(int(t) for t in s)), dtype=np.int64) for s in terminal_sets]
        keep = [i for i, s in enumerate(sets) if s.size > 1]
        loads = np.zeros(self.n_edges, dtype=np.float64)
        if not keep:
            return loads
        indicator = np.zeros((self.n_nodes, len(keep)), dtype=np.float64)
        totals = np.empty(len(keep), dtype=np.float64)
        wvec = np.empty(len(keep), dtype=np.float64)
        for col, i in enumerate(keep):
            indicator[sets[i], col] = 1.0
            totals[col] = sets[i].size
            wvec[col] = float(weights[i])
        below = self.edge_loads_from_deltas(indicator)
        inside = (below > 0) & (below < totals[None, :])
        return inside @ wvec

    def steiner_edge_mask(self, terminals: Iterable[int]) -> np.ndarray:
        """Boolean per-edge membership mask of one Steiner tree."""
        term = np.asarray(sorted(set(int(t) for t in terminals)), dtype=np.int64)
        if term.size <= 1:
            return np.zeros(self.n_edges, dtype=bool)
        indicator = np.zeros(self.n_nodes, dtype=np.float64)
        indicator[term] = 1.0
        below = self.edge_loads_from_deltas(indicator)
        return (below > 0) & (below < term.size)

    def bus_loads_from_edge_loads(self, edge_loads: np.ndarray) -> np.ndarray:
        """Fold edge loads into bus loads (half the incident-edge sum).

        Accepts ``(n_edges,)`` or ``(n_edges, batch)``; entries for
        processor nodes are zero, matching the scalar model.
        """
        edge_loads = np.ascontiguousarray(edge_loads, dtype=np.float64)
        out = np.zeros((self.n_nodes,) + edge_loads.shape[1:], dtype=np.float64)
        kernels.bus_fold(out, self._edge_u, self._edge_v, self._bus_mask, edge_loads)
        out *= 0.5
        return out
