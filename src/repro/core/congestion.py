"""Load and congestion computation.

The cost model of Section 1.1:

* a **read** request from processor ``P`` to object ``x`` adds one unit of
  load to every edge on the unique path from ``P`` to its reference copy
  ``c(P, x)``;
* a **write** request adds one unit to every edge on the path from ``P`` to
  ``c(P, x)`` *and* one unit to every edge of the Steiner tree connecting
  the holder set ``P_x`` (the update broadcast);
* the **load of a bus** is half the sum of the loads of its incident edges
  (every message crossing the bus enters and leaves it);
* the **relative load** of an edge or bus is its load divided by its
  bandwidth, and the **congestion** is the maximum relative load over all
  edges and buses.

:func:`compute_loads` evaluates this model exactly for any placement and
request assignment and returns a :class:`LoadProfile`; :func:`congestion` is
the scalar shortcut and :func:`batch_congestions` evaluates a whole batch of
candidate placements in one pass.

Incidence-matrix formulation
----------------------------
Since PR 1 the evaluation is vectorized through the sparse path-incidence
structure of :mod:`repro.core.pathmatrix`: with ``A[e, v] = 1`` iff edge
``e`` lies on the root path of node ``v``, the load of all request pairs
``(P, c(P, x), w)`` is ``A · δ`` where ``δ`` is the node-delta vector with
``+w`` at both endpoints and ``-2w`` at their LCA, and the write broadcast
of holder set ``P_x`` falls out of the same operator applied to the 0/1
membership vector of ``P_x`` (an edge is in the Steiner tree iff the
terminal count strictly below it is neither zero nor ``|P_x|``).  Batches of
placements are extra columns of ``δ``, so evaluating many candidates costs
one sparse scatter instead of nested Python loops.  The original scalar
implementations are kept as :func:`_reference_compute_loads` /
:func:`_reference_object_edge_loads`; the property tests assert exact
agreement between the two code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import Placement, RequestAssignment
from repro.errors import PlacementError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "LoadProfile",
    "compute_loads",
    "congestion",
    "batch_congestions",
    "object_edge_loads",
    "total_communication_load",
]


@dataclass(frozen=True)
class LoadProfile:
    """Edge and bus loads of a placement, plus derived congestion values."""

    network: HierarchicalBusNetwork
    edge_loads: np.ndarray
    bus_loads: np.ndarray

    # ------------------------------------------------------------------ #
    # relative loads
    # ------------------------------------------------------------------ #
    @property
    def edge_relative_loads(self) -> np.ndarray:
        """Per-edge load divided by edge bandwidth."""
        return self.edge_loads / np.asarray(self.network.edge_bandwidths)

    @property
    def bus_relative_loads(self) -> np.ndarray:
        """Per-node bus load divided by bus bandwidth (zero for processors)."""
        return self.bus_loads / np.asarray(self.network.bus_bandwidths)

    @property
    def congestion(self) -> float:
        """Maximum relative load over all edges and buses."""
        values = [0.0]
        if self.edge_loads.size:
            values.append(float(self.edge_relative_loads.max()))
        if self.bus_loads.size:
            values.append(float(self.bus_relative_loads.max()))
        return max(values)

    @property
    def max_edge_load(self) -> float:
        """Maximum absolute edge load."""
        return float(self.edge_loads.max()) if self.edge_loads.size else 0.0

    @property
    def total_load(self) -> float:
        """Total communication load (sum of all edge loads)."""
        return float(self.edge_loads.sum())

    def bottleneck_edge(self) -> Optional[int]:
        """Edge id with the maximum relative load (None for edgeless networks)."""
        if not self.edge_loads.size:
            return None
        return int(np.argmax(self.edge_relative_loads))

    def bottleneck_bus(self) -> Optional[int]:
        """Bus node id with the maximum relative load (None if there is no bus)."""
        if not self.network.buses:
            return None
        rel = self.bus_relative_loads
        buses = list(self.network.buses)
        values = [rel[b] for b in buses]
        return int(buses[int(np.argmax(values))])

    def edge_load(self, u: int, v: int) -> float:
        """Load of edge ``{u, v}``."""
        return float(self.edge_loads[self.network.edge_id(u, v)])

    def bus_load(self, bus: int) -> float:
        """Load of bus ``bus``."""
        return float(self.bus_loads[bus])


def _bus_loads_from_edges(
    network: HierarchicalBusNetwork, edge_loads: np.ndarray
) -> np.ndarray:
    """Derive bus loads: half the sum of incident edge loads, per bus."""
    bus_loads = np.zeros(network.n_nodes, dtype=np.float64)
    for bus in network.buses:
        incident = network.incident_edge_ids(bus)
        bus_loads[bus] = edge_loads[list(incident)].sum() / 2.0
    return bus_loads


# --------------------------------------------------------------------------- #
# pair extraction helpers (assignment -> flat request-pair arrays)
# --------------------------------------------------------------------------- #
def _assignment_pair_arrays(
    assignment: RequestAssignment,
    objects: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten an assignment into ``(proc, holder, weight)`` arrays.

    With ``objects`` given, only shares of those objects are included.
    """
    wanted = None if objects is None else set(int(x) for x in objects)
    procs: List[int] = []
    holders: List[int] = []
    weights: List[int] = []
    for (proc, obj), shares in assignment.items():
        if wanted is not None and obj not in wanted:
            continue
        for share in shares:
            if share.total == 0:
                continue
            procs.append(proc)
            holders.append(share.holder)
            weights.append(share.total)
    return (
        np.asarray(procs, dtype=np.int64),
        np.asarray(holders, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def _nearest_pair_arrays(
    pattern: AccessPattern,
    placement: Placement,
    path_matrix,
    objects: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nearest-copy ``(proc, holder, weight)`` arrays without building shares.

    Matches :meth:`RequestAssignment.nearest_copy` (ties towards the
    smallest holder id) but resolves every (requester, object) pair in one
    batched LCA/distance evaluation instead of per-share object
    construction; used by the vectorized evaluators where the assignment
    itself is not needed.
    """
    totals = pattern.totals
    if objects is None:
        proc_idx, col_idx = np.nonzero(totals)
        obj_idx = col_idx
        holder_sets: Sequence[frozenset] = placement.all_holders()
    else:
        # Work proportional to the selected objects only (callers loop over
        # single objects; whole-pattern work here would make them quadratic).
        obj_list = np.asarray(list(objects), dtype=np.int64)
        proc_idx, col_idx = np.nonzero(totals[:, obj_list])
        obj_idx = obj_list[col_idx]
        holder_sets = [placement.holders(int(x)) for x in obj_list]
    weights = totals[proc_idx, obj_idx].astype(np.float64)
    if proc_idx.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)

    max_holders = max(len(hs) for hs in holder_sets)
    if max_holders == 1:
        holder_of = np.fromiter(
            (next(iter(hs)) for hs in holder_sets), dtype=np.int64, count=len(holder_sets)
        )
        return proc_idx, holder_of[col_idx], weights

    # Padded candidate matrix: row k holds object k's holders ascending,
    # padded with its smallest holder (duplicates come later in the row, so
    # argmin's first-minimum rule still breaks ties to the smallest id).
    candidates = np.empty((len(holder_sets), max_holders), dtype=np.int64)
    for k, hs in enumerate(holder_sets):
        row = sorted(hs)
        candidates[k, : len(row)] = row
        candidates[k, len(row) :] = row[0]
    cand = candidates[col_idx]
    dist = path_matrix.distances(proc_idx[:, None], cand)
    nearest = cand[np.arange(proc_idx.size), np.argmin(dist, axis=1)]
    return proc_idx, nearest, weights


def _steiner_sets_and_weights(
    pattern: AccessPattern,
    placement: Placement,
    objects: Optional[Sequence[int]] = None,
) -> Tuple[List[frozenset], List[int]]:
    """Holder sets and write contentions of objects with broadcast cost."""
    sets: List[frozenset] = []
    weights: List[int] = []
    if objects is None:
        kappas = pattern.write_contentions()
        pairs = ((obj, int(kappas[obj])) for obj in range(pattern.n_objects))
    else:
        pairs = ((obj, pattern.write_contention(obj)) for obj in objects)
    for obj, kappa in pairs:
        holders = placement.holders(obj)
        if kappa > 0 and len(holders) > 1:
            sets.append(holders)
            weights.append(kappa)
    return sets, weights


# --------------------------------------------------------------------------- #
# reference (scalar) implementations
# --------------------------------------------------------------------------- #
def _reference_object_edge_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    obj: int,
    assignment: Optional[RequestAssignment] = None,
    rooted: Optional[RootedTree] = None,
) -> np.ndarray:
    """Scalar per-object edge loads (pre-vectorization implementation).

    Kept verbatim as the ground truth for the property tests; the public
    :func:`object_edge_loads` must agree with it exactly.
    """
    if rooted is None:
        rooted = network.rooted()
    if assignment is None:
        assignment = RequestAssignment.nearest_copy(network, pattern, placement)
    loads = np.zeros(network.n_edges, dtype=np.float64)
    holders = placement.holders(obj)
    # request -> reference copy traffic
    for proc in pattern.requesters(obj):
        for share in assignment.shares(proc, obj):
            count = share.total
            if count == 0:
                continue
            for eid in rooted.path_edge_ids(proc, share.holder):
                loads[eid] += count
    # write broadcast over the Steiner tree of the holder set
    kappa = pattern.write_contention(obj)
    if kappa > 0 and len(holders) > 1:
        for eid in rooted.steiner_edge_ids(holders):
            loads[eid] += kappa
    return loads


def _reference_compute_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    validate: bool = True,
) -> LoadProfile:
    """Scalar whole-placement evaluation (pre-vectorization implementation)."""
    if validate:
        placement.validate_for(network, pattern)
        pattern.validate_for(network)
    if assignment is None:
        assignment = RequestAssignment.nearest_copy(network, pattern, placement)
    elif validate:
        assignment.validate_for(network, pattern, placement)

    rooted = network.rooted()
    edge_loads = np.zeros(network.n_edges, dtype=np.float64)
    for obj in range(pattern.n_objects):
        edge_loads += _reference_object_edge_loads(
            network, pattern, placement, obj, assignment=assignment, rooted=rooted
        )
    bus_loads = _bus_loads_from_edges(network, edge_loads)
    return LoadProfile(network=network, edge_loads=edge_loads, bus_loads=bus_loads)


# --------------------------------------------------------------------------- #
# vectorized implementations
# --------------------------------------------------------------------------- #
def object_edge_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    obj: int,
    assignment: Optional[RequestAssignment] = None,
    rooted: Optional[RootedTree] = None,
) -> np.ndarray:
    """Per-edge load induced by a single object ``obj``.

    The total load of a placement is the sum of these vectors over all
    objects; the per-object view is what Theorem 3.1 reasons about (the load
    on an edge "induced for serving requests to an object x").
    """
    if rooted is None:
        rooted = network.rooted()
    pm = rooted.path_matrix()
    if assignment is None:
        u, v, w = _nearest_pair_arrays(pattern, placement, pm, objects=[obj])
    else:
        u, v, w = _assignment_pair_arrays(assignment, objects=[obj])
    loads = pm.pair_edge_loads(u, v, w)
    sets, weights = _steiner_sets_and_weights(pattern, placement, objects=[obj])
    if sets:
        loads += pm.steiner_edge_loads(sets, weights)
    return loads


def compute_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    validate: bool = True,
) -> LoadProfile:
    """Evaluate the cost model for a placement.

    Parameters
    ----------
    network, pattern, placement:
        The instance and the placement to evaluate.
    assignment:
        Optional explicit request assignment.  Defaults to the nearest-copy
        assignment (the paper's convention).
    validate:
        If true (default), validate the placement and assignment first.
    """
    if validate:
        placement.validate_for(network, pattern)
        pattern.validate_for(network)
        if assignment is not None:
            assignment.validate_for(network, pattern, placement)

    rooted = network.rooted()
    pm = rooted.path_matrix()
    if assignment is None:
        u, v, w = _nearest_pair_arrays(pattern, placement, pm)
    else:
        u, v, w = _assignment_pair_arrays(assignment)
    edge_loads = pm.pair_edge_loads(u, v, w)
    sets, weights = _steiner_sets_and_weights(pattern, placement)
    if sets:
        edge_loads += pm.steiner_edge_loads(sets, weights)
    bus_loads = pm.bus_loads_from_edge_loads(edge_loads)
    return LoadProfile(network=network, edge_loads=edge_loads, bus_loads=bus_loads)


def batch_congestions(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placements: Sequence[Placement],
    assignments: Optional[Sequence[Optional[RequestAssignment]]] = None,
    validate: bool = False,
) -> np.ndarray:
    """Congestion of a whole batch of candidate placements at once.

    The per-placement node deltas and Steiner loads become columns of one
    matrix, so the expensive path-incidence scatter and the bus folding run
    once for the entire batch.  Search-style callers (exact solvers, greedy
    baselines, tuning sweeps) should prefer this over a loop of
    :func:`congestion` calls.

    Parameters
    ----------
    network, pattern:
        The instance.
    placements:
        Candidate placements to evaluate.
    assignments:
        Optional parallel sequence of explicit assignments (``None`` entries
        fall back to nearest-copy).
    validate:
        If true, validate every placement/assignment first (off by default:
        batch callers typically generate candidates programmatically).

    Returns
    -------
    numpy.ndarray
        ``congestions[k]`` is the congestion of ``placements[k]``.
    """
    n_placements = len(placements)
    if assignments is not None and len(assignments) != n_placements:
        raise PlacementError("assignments must be parallel to placements")
    if n_placements == 0:
        return np.zeros(0, dtype=np.float64)

    rooted = network.rooted()
    pm = rooted.path_matrix()
    deltas = np.zeros((network.n_nodes, n_placements), dtype=np.float64)
    steiner = np.zeros((network.n_edges, n_placements), dtype=np.float64)
    for k, placement in enumerate(placements):
        assignment = assignments[k] if assignments is not None else None
        if validate:
            placement.validate_for(network, pattern)
            if assignment is not None:
                assignment.validate_for(network, pattern, placement)
        if assignment is None:
            u, v, w = _nearest_pair_arrays(pattern, placement, pm)
        else:
            u, v, w = _assignment_pair_arrays(assignment)
        deltas[:, k] = pm.pair_deltas(u, v, w)
        sets, weights = _steiner_sets_and_weights(pattern, placement)
        if sets:
            steiner[:, k] = pm.steiner_edge_loads(sets, weights)

    edge_loads = pm.edge_loads_from_deltas(deltas) + steiner
    bus_loads = pm.bus_loads_from_edge_loads(edge_loads)
    edge_bw = np.asarray(network.edge_bandwidths)[:, None]
    bus_bw = np.asarray(network.bus_bandwidths)[:, None]
    worst = np.zeros(n_placements, dtype=np.float64)
    if edge_loads.size:
        worst = np.maximum(worst, (edge_loads / edge_bw).max(axis=0))
    if bus_loads.size:
        worst = np.maximum(worst, (bus_loads / bus_bw).max(axis=0))
    return worst


def congestion(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    validate: bool = True,
) -> float:
    """Congestion (max relative load over edges and buses) of a placement."""
    return compute_loads(
        network, pattern, placement, assignment=assignment, validate=validate
    ).congestion


def total_communication_load(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
) -> float:
    """Total communication load (sum over edges of the edge load).

    This is the objective that earlier theoretical work minimises; the paper
    argues that congestion is the better objective because minimising the
    total load can create very congested individual links.  The baseline
    benchmarks report both.
    """
    return compute_loads(network, pattern, placement, assignment=assignment).total_load
