"""Load and congestion computation.

The cost model of Section 1.1:

* a **read** request from processor ``P`` to object ``x`` adds one unit of
  load to every edge on the unique path from ``P`` to its reference copy
  ``c(P, x)``;
* a **write** request adds one unit to every edge on the path from ``P`` to
  ``c(P, x)`` *and* one unit to every edge of the Steiner tree connecting
  the holder set ``P_x`` (the update broadcast);
* the **load of a bus** is half the sum of the loads of its incident edges
  (every message crossing the bus enters and leaves it);
* the **relative load** of an edge or bus is its load divided by its
  bandwidth, and the **congestion** is the maximum relative load over all
  edges and buses.

:func:`compute_loads` evaluates this model exactly for any placement and
request assignment and returns a :class:`LoadProfile`; :func:`congestion` is
the scalar shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.placement import Placement, RequestAssignment
from repro.errors import PlacementError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "LoadProfile",
    "compute_loads",
    "congestion",
    "object_edge_loads",
    "total_communication_load",
]


@dataclass(frozen=True)
class LoadProfile:
    """Edge and bus loads of a placement, plus derived congestion values."""

    network: HierarchicalBusNetwork
    edge_loads: np.ndarray
    bus_loads: np.ndarray

    # ------------------------------------------------------------------ #
    # relative loads
    # ------------------------------------------------------------------ #
    @property
    def edge_relative_loads(self) -> np.ndarray:
        """Per-edge load divided by edge bandwidth."""
        return self.edge_loads / np.asarray(self.network.edge_bandwidths)

    @property
    def bus_relative_loads(self) -> np.ndarray:
        """Per-node bus load divided by bus bandwidth (zero for processors)."""
        return self.bus_loads / np.asarray(self.network.bus_bandwidths)

    @property
    def congestion(self) -> float:
        """Maximum relative load over all edges and buses."""
        values = [0.0]
        if self.edge_loads.size:
            values.append(float(self.edge_relative_loads.max()))
        if self.bus_loads.size:
            values.append(float(self.bus_relative_loads.max()))
        return max(values)

    @property
    def max_edge_load(self) -> float:
        """Maximum absolute edge load."""
        return float(self.edge_loads.max()) if self.edge_loads.size else 0.0

    @property
    def total_load(self) -> float:
        """Total communication load (sum of all edge loads)."""
        return float(self.edge_loads.sum())

    def bottleneck_edge(self) -> Optional[int]:
        """Edge id with the maximum relative load (None for edgeless networks)."""
        if not self.edge_loads.size:
            return None
        return int(np.argmax(self.edge_relative_loads))

    def bottleneck_bus(self) -> Optional[int]:
        """Bus node id with the maximum relative load (None if there is no bus)."""
        if not self.network.buses:
            return None
        rel = self.bus_relative_loads
        buses = list(self.network.buses)
        values = [rel[b] for b in buses]
        return int(buses[int(np.argmax(values))])

    def edge_load(self, u: int, v: int) -> float:
        """Load of edge ``{u, v}``."""
        return float(self.edge_loads[self.network.edge_id(u, v)])

    def bus_load(self, bus: int) -> float:
        """Load of bus ``bus``."""
        return float(self.bus_loads[bus])


def _bus_loads_from_edges(
    network: HierarchicalBusNetwork, edge_loads: np.ndarray
) -> np.ndarray:
    """Derive bus loads: half the sum of incident edge loads, per bus."""
    bus_loads = np.zeros(network.n_nodes, dtype=np.float64)
    for bus in network.buses:
        incident = network.incident_edge_ids(bus)
        bus_loads[bus] = edge_loads[list(incident)].sum() / 2.0
    return bus_loads


def object_edge_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    obj: int,
    assignment: Optional[RequestAssignment] = None,
    rooted: Optional[RootedTree] = None,
) -> np.ndarray:
    """Per-edge load induced by a single object ``obj``.

    The total load of a placement is the sum of these vectors over all
    objects; the per-object view is what Theorem 3.1 reasons about (the load
    on an edge "induced for serving requests to an object x").
    """
    if rooted is None:
        rooted = network.rooted()
    if assignment is None:
        assignment = RequestAssignment.nearest_copy(network, pattern, placement)
    loads = np.zeros(network.n_edges, dtype=np.float64)
    holders = placement.holders(obj)
    # request -> reference copy traffic
    for proc in pattern.requesters(obj):
        for share in assignment.shares(proc, obj):
            count = share.total
            if count == 0:
                continue
            for eid in rooted.path_edge_ids(proc, share.holder):
                loads[eid] += count
    # write broadcast over the Steiner tree of the holder set
    kappa = pattern.write_contention(obj)
    if kappa > 0 and len(holders) > 1:
        for eid in rooted.steiner_edge_ids(holders):
            loads[eid] += kappa
    return loads


def compute_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    validate: bool = True,
) -> LoadProfile:
    """Evaluate the cost model for a placement.

    Parameters
    ----------
    network, pattern, placement:
        The instance and the placement to evaluate.
    assignment:
        Optional explicit request assignment.  Defaults to the nearest-copy
        assignment (the paper's convention).
    validate:
        If true (default), validate the placement and assignment first.
    """
    if validate:
        placement.validate_for(network, pattern)
        pattern.validate_for(network)
    if assignment is None:
        assignment = RequestAssignment.nearest_copy(network, pattern, placement)
    elif validate:
        assignment.validate_for(network, pattern, placement)

    rooted = network.rooted()
    edge_loads = np.zeros(network.n_edges, dtype=np.float64)
    for obj in range(pattern.n_objects):
        edge_loads += object_edge_loads(
            network, pattern, placement, obj, assignment=assignment, rooted=rooted
        )
    bus_loads = _bus_loads_from_edges(network, edge_loads)
    return LoadProfile(network=network, edge_loads=edge_loads, bus_loads=bus_loads)


def congestion(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
    validate: bool = True,
) -> float:
    """Congestion (max relative load over edges and buses) of a placement."""
    return compute_loads(
        network, pattern, placement, assignment=assignment, validate=validate
    ).congestion


def total_communication_load(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    placement: Placement,
    assignment: Optional[RequestAssignment] = None,
) -> float:
    """Total communication load (sum over edges of the edge load).

    This is the objective that earlier theoretical work minimises; the paper
    argues that congestion is the better objective because minimising the
    total load can create very congested individual links.  The baseline
    benchmarks report both.
    """
    return compute_loads(network, pattern, placement, assignment=assignment).total_load
