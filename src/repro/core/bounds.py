"""Lower bounds on the optimal congestion.

The approximation experiments need a certified lower bound on ``C_opt`` (the
optimal congestion of the *bus-network* problem, where only processors may
hold copies) that is cheap to compute for instances too large for the exact
solvers.

The main bound comes straight from Theorem 3.1: the nibble placement (which
may use buses) minimises the load on *every* edge simultaneously over all
placements and assignments, so its edge loads -- and hence its congestion --
lower-bound the congestion of every bus-network placement:

    ``C_opt  ≥  congestion(nibble placement)``.

The module also exposes the per-edge load vector of the nibble placement as
the vector of per-edge lower bounds, and the τ-related bound the paper uses
in the proof of Theorem 4.3 (``C_opt ≥ min(κ_x̂, h_x̂ / 2)`` for the heaviest
object that needed mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.congestion import compute_loads
from repro.core.nibble import NibbleResult, nibble_placement
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "LowerBoundReport",
    "nibble_lower_bound",
    "per_edge_lower_bounds",
    "contention_lower_bound",
    "congestion_lower_bound",
]


@dataclass(frozen=True)
class LowerBoundReport:
    """Collection of congestion lower bounds for one instance."""

    nibble_congestion: float
    contention_bound: float

    @property
    def best(self) -> float:
        """The strongest (largest) available lower bound."""
        return max(self.nibble_congestion, self.contention_bound)


def nibble_lower_bound(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    nibble: Optional[NibbleResult] = None,
) -> float:
    """Congestion of the nibble placement -- a lower bound on ``C_opt``."""
    if nibble is None:
        nibble = nibble_placement(network, pattern)
    return compute_loads(network, pattern, nibble.placement).congestion


def per_edge_lower_bounds(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    nibble: Optional[NibbleResult] = None,
) -> np.ndarray:
    """Per-edge load lower bounds (the nibble placement's edge loads)."""
    if nibble is None:
        nibble = nibble_placement(network, pattern)
    return compute_loads(network, pattern, nibble.placement).edge_loads


def contention_lower_bound(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    affected_objects: Optional[Sequence[int]] = None,
) -> float:
    """The paper's contention bound: ``min(κ_x̂, h_x̂ / 2)``.

    Section 4 shows that for the maximum-contention object ``x̂`` among those
    whose nibble placement used inner nodes, either ``C_opt ≥ κ_x̂`` or
    ``C_opt ≥ h_x̂ / 2``; hence ``C_opt ≥ min(κ_x̂, h_x̂/2)``.  When
    ``affected_objects`` is None the bound is evaluated over the objects
    whose nibble holder set contains a bus.
    """
    if affected_objects is None:
        nib = nibble_placement(network, pattern)
        affected_objects = [
            obj
            for obj in range(pattern.n_objects)
            if any(network.is_bus(h) for h in nib.placement.holders(obj))
        ]
    best = 0.0
    for obj in affected_objects:
        kappa = pattern.write_contention(obj)
        total = pattern.total_requests(obj)
        best = max(best, min(float(kappa), total / 2.0))
    return best


def congestion_lower_bound(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    nibble: Optional[NibbleResult] = None,
) -> LowerBoundReport:
    """All available lower bounds for an instance."""
    if nibble is None:
        nibble = nibble_placement(network, pattern)
    affected = [
        obj
        for obj in range(pattern.n_objects)
        if any(network.is_bus(h) for h in nibble.placement.holders(obj))
    ]
    return LowerBoundReport(
        nibble_congestion=nibble_lower_bound(network, pattern, nibble),
        contention_bound=contention_lower_bound(network, pattern, affected),
    )
