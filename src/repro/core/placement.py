"""Placements and reference-copy assignments.

A *placement* (Section 1.1 of the paper) determines, for every shared data
object ``x``, a non-empty set ``P_x`` of nodes holding copies of ``x`` and,
for every processor ``P``, a *reference copy* ``c(P, x) ∈ P_x`` that serves
``P``'s requests to ``x``.

Two placement flavours appear in the paper:

* *tree placements* produced by the nibble strategy of [MMVW97], where inner
  nodes (buses) may hold copies, and
* *bus-network placements*, where only processors (leaves) may hold copies
  -- the model of this paper, and the output of the extended-nibble
  strategy.

Both are represented by :class:`Placement`; :meth:`Placement.is_leaf_only`
distinguishes them and :meth:`Placement.validate_for` can enforce the
leaf-only restriction.

The deletion step of the extended-nibble strategy may split the requests of
a single processor across several copies; :class:`RequestAssignment` captures
such (possibly fractional, in the sense of *split counts*) assignments
exactly, while keeping the common single-reference-copy case convenient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AssignmentError, PlacementError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = ["Placement", "Share", "RequestAssignment"]


class Placement:
    """Copy locations ``P_x`` for every shared object.

    Parameters
    ----------
    holders:
        One iterable of node ids per object; must be non-empty for every
        object (every object needs at least one copy).
    """

    __slots__ = ("_holders",)

    def __init__(self, holders: Sequence[Iterable[int]]) -> None:
        frozen: List[frozenset] = []
        for x, hs in enumerate(holders):
            fs = frozenset(int(h) for h in hs)
            if not fs:
                raise PlacementError(f"object {x} has an empty holder set")
            frozen.append(fs)
        self._holders: Tuple[frozenset, ...] = tuple(frozen)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single_holder(cls, holder_per_object: Sequence[int]) -> "Placement":
        """Non-redundant placement with one holder per object."""
        return cls([[h] for h in holder_per_object])

    @classmethod
    def full_replication(
        cls, network: HierarchicalBusNetwork, n_objects: int
    ) -> "Placement":
        """Every processor holds a copy of every object."""
        procs = list(network.processors)
        return cls([procs for _ in range(n_objects)])

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n_objects(self) -> int:
        """Number of objects the placement covers."""
        return len(self._holders)

    def holders(self, obj: int) -> frozenset:
        """The holder set ``P_x`` of object ``obj``."""
        return self._holders[obj]

    def all_holders(self) -> Tuple[frozenset, ...]:
        """Holder sets of all objects, indexed by object."""
        return self._holders

    def n_copies(self, obj: int) -> int:
        """Number of distinct holder nodes of object ``obj``."""
        return len(self._holders[obj])

    def total_copies(self) -> int:
        """Total number of (object, holder) pairs."""
        return sum(len(h) for h in self._holders)

    def is_redundant(self, obj: int) -> bool:
        """True if object ``obj`` has more than one copy."""
        return len(self._holders[obj]) > 1

    def is_leaf_only(self, network: HierarchicalBusNetwork) -> bool:
        """True iff every holder is a processor (bus-network placement)."""
        return all(
            network.is_processor(h) for hs in self._holders for h in hs
        )

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate_for(
        self,
        network: HierarchicalBusNetwork,
        pattern: Optional[AccessPattern] = None,
        require_leaf_only: bool = False,
    ) -> None:
        """Check holder node ids (and optionally the leaf-only restriction).

        Parameters
        ----------
        network:
            Network the placement refers to.
        pattern:
            Optional access pattern; if given, the number of objects must
            match.
        require_leaf_only:
            If true, raise when a bus holds a copy (the hierarchical bus
            network model forbids this).
        """
        if pattern is not None and pattern.n_objects != self.n_objects:
            raise PlacementError(
                f"placement covers {self.n_objects} objects, "
                f"pattern has {pattern.n_objects}"
            )
        for x, hs in enumerate(self._holders):
            for h in hs:
                if h not in network:
                    raise PlacementError(f"object {x}: unknown holder node {h}")
                if require_leaf_only and not network.is_processor(h):
                    raise PlacementError(
                        f"object {x}: holder {h} is a bus, but the hierarchical "
                        "bus network model allows copies only on processors"
                    )

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._holders == other._holders

    def __hash__(self) -> int:
        return hash(self._holders)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Placement(n_objects={self.n_objects}, "
            f"total_copies={self.total_copies()})"
        )


@dataclass(frozen=True)
class Share:
    """A portion of one processor's requests to one object served by a holder.

    ``reads`` and ``writes`` are the number of read and write requests of the
    (processor, object) pair that are served by ``holder``.
    """

    holder: int
    reads: int
    writes: int

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise AssignmentError("share counts must be non-negative")

    @property
    def total(self) -> int:
        """Total number of requests in this share."""
        return self.reads + self.writes


class RequestAssignment:
    """Assignment of every request to the copy that serves it.

    In the simplest (paper-default) case every (processor, object) pair has a
    single reference copy; the deletion step of the extended-nibble strategy
    may however split one pair's requests between several copies.  This class
    stores, for every (processor, object) pair with requests, the list of
    :class:`Share` records describing how the requests are split.
    """

    __slots__ = ("_shares", "_n_objects")

    def __init__(
        self,
        shares: Mapping[Tuple[int, int], Sequence[Share]],
        n_objects: int,
    ) -> None:
        self._shares: Dict[Tuple[int, int], Tuple[Share, ...]] = {}
        for key, value in shares.items():
            proc, obj = int(key[0]), int(key[1])
            if not 0 <= obj < n_objects:
                raise AssignmentError(f"object index {obj} out of range")
            entries = tuple(value)
            if not entries:
                continue
            self._shares[(proc, obj)] = entries
        self._n_objects = int(n_objects)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def nearest_copy(
        cls,
        network: HierarchicalBusNetwork,
        pattern: AccessPattern,
        placement: Placement,
    ) -> "RequestAssignment":
        """Assign every processor to the closest copy (ties: smallest id).

        This is the paper's convention for the nibble placement (Section 3.2:
        "the reference copy ``c(P, x)`` is the copy of ``x`` stored on the
        node closest to ``P``").
        """
        placement.validate_for(network, pattern)
        rooted = network.rooted()
        path_matrix = rooted.path_matrix()
        reads_matrix = pattern.reads
        writes_matrix = pattern.writes
        shares: Dict[Tuple[int, int], List[Share]] = {}
        for obj in range(pattern.n_objects):
            requesters = np.asarray(pattern.requesters(obj), dtype=np.int64)
            if requesters.size == 0:
                continue
            nearest = path_matrix.nearest_in_set(
                requesters, sorted(placement.holders(obj))
            )
            reads = reads_matrix[requesters, obj]
            writes = writes_matrix[requesters, obj]
            for proc, holder, r, w in zip(requesters, nearest, reads, writes):
                shares[(int(proc), obj)] = [Share(int(holder), int(r), int(w))]
        return cls(shares, pattern.n_objects)

    @classmethod
    def single_reference(
        cls,
        pattern: AccessPattern,
        reference: Mapping[Tuple[int, int], int],
    ) -> "RequestAssignment":
        """Build an assignment from an explicit ``(processor, object) -> holder`` map."""
        shares: Dict[Tuple[int, int], List[Share]] = {}
        for obj in range(pattern.n_objects):
            for proc in pattern.requesters(obj):
                try:
                    holder = reference[(proc, obj)]
                except KeyError:
                    raise AssignmentError(
                        f"no reference copy given for processor {proc}, object {obj}"
                    ) from None
                shares[(proc, obj)] = [
                    Share(holder, pattern.reads_of(proc, obj), pattern.writes_of(proc, obj))
                ]
        return cls(shares, pattern.n_objects)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n_objects(self) -> int:
        """Number of objects covered."""
        return self._n_objects

    def shares(self, proc: int, obj: int) -> Tuple[Share, ...]:
        """Shares of the (processor, object) pair (empty if no requests)."""
        return self._shares.get((proc, obj), ())

    def items(self):
        """Iterate over ``((processor, object), shares)`` pairs."""
        return self._shares.items()

    def reference_copy(self, proc: int, obj: int) -> int:
        """The single reference copy of a pair (error if split across copies)."""
        entries = self.shares(proc, obj)
        if not entries:
            raise AssignmentError(f"processor {proc} has no requests to object {obj}")
        holders = {s.holder for s in entries}
        if len(holders) != 1:
            raise AssignmentError(
                f"requests of processor {proc} to object {obj} are split across "
                f"holders {sorted(holders)}"
            )
        return entries[0].holder

    def is_single_reference(self) -> bool:
        """True iff no (processor, object) pair is split across holders."""
        return all(
            len({s.holder for s in entries}) == 1 for entries in self._shares.values()
        )

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate_for(
        self,
        network: HierarchicalBusNetwork,
        pattern: AccessPattern,
        placement: Placement,
    ) -> None:
        """Check consistency of the assignment.

        * counts of every pair sum to the pattern frequencies,
        * every share's holder is a holder of the object in ``placement``,
        * every pair with requests in the pattern has shares.
        """
        if pattern.n_objects != self._n_objects:
            raise AssignmentError("assignment and pattern cover different object counts")
        for obj in range(pattern.n_objects):
            holders = placement.holders(obj)
            for proc in pattern.requesters(obj):
                entries = self.shares(proc, obj)
                if not entries:
                    raise AssignmentError(
                        f"processor {proc} requests object {obj} but has no shares"
                    )
                reads = sum(s.reads for s in entries)
                writes = sum(s.writes for s in entries)
                if reads != pattern.reads_of(proc, obj) or writes != pattern.writes_of(
                    proc, obj
                ):
                    raise AssignmentError(
                        f"shares of processor {proc}, object {obj} do not sum to the "
                        "pattern frequencies"
                    )
                for s in entries:
                    if s.holder not in holders:
                        raise AssignmentError(
                            f"share of processor {proc}, object {obj} uses holder "
                            f"{s.holder} which is not in P_x = {sorted(holders)}"
                        )
                    if s.holder not in network:
                        raise AssignmentError(f"unknown holder node {s.holder}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RequestAssignment(n_objects={self._n_objects}, "
            f"n_pairs={len(self._shares)})"
        )
