"""Step 3: the mapping algorithm -- moving copies from buses to processors.

After the deletion step, some copies may still sit on inner nodes (buses),
which is forbidden in the hierarchical bus network model.  The mapping
algorithm (Section 3.3, Figures 5 and 6) relocates them to leaves while
keeping the extra *forwarding* load bounded:

* every directed edge carries an **acceptable load** ``L_acc``, initialised
  to twice its **basic load** ``L_b`` (the number of requests whose serving
  path uses the edge in that direction in the modified nibble placement);
* moving a copy ``c`` along a directed edge increases that edge's **mapping
  load** ``L_map`` by ``s(c) + κ_{x(c)}`` (the requests that will be
  forwarded plus the extension of the write-broadcast Steiner tree);
* the **upwards phase** pushes copies towards the root as long as the
  mapping load stays below the acceptable load, then clamps the acceptable
  load of the traversed edge pair (the "adjustment");
* the **downwards phase** pushes every copy still on an inner node towards
  the leaves through *free* child edges
  (``L_map + s(c) + κ ≤ L_acc + τ_max``); Lemma 4.1 shows a free edge always
  exists, and Lemmas 4.4--4.6 turn the accounting into the factor-7
  congestion guarantee of Theorem 4.3.

Implementation notes
--------------------
* The paper roots ``T`` at an arbitrary node.  We allow any root; when the
  root is a bus it is simply processed first in the downwards phase (the
  invariant argument of Lemma 4.1 holds there as well because the root has
  no incoming edge left after the upwards phase).
* Only *affected* objects -- those that still have a copy on a bus after the
  deletion step -- take part in the mapping; the analysis (Section 4)
  explicitly leaves the placement of all other objects unchanged.
* All copies of affected objects participate, including copies already on
  leaves, exactly as in the pseudocode of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deletion import CopyRecord, ObjectCopies
from repro.errors import AlgorithmError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["MappingResult", "map_copies_to_leaves", "directed_basic_loads"]


@dataclass
class MappingResult:
    """Diagnostics of one run of the mapping algorithm.

    Attributes
    ----------
    root:
        Root node used for the phases.
    affected_objects:
        Objects whose copies participated in the mapping.
    tau_max:
        The constant ``τ_max = max_c (s(c) + κ_{x(c)})`` over participating
        copies (0 when nothing had to be mapped).
    moves_up, moves_down:
        Number of copy movements in the two phases.
    up_mapping_load, down_mapping_load:
        Final mapping loads per directed edge, indexed by the child node of
        the edge (``up`` is child→parent, ``down`` is parent→child).
    up_acceptable_load, down_acceptable_load:
        Final acceptable loads per directed edge (same indexing).
    """

    root: int
    affected_objects: Tuple[int, ...]
    tau_max: int
    moves_up: int
    moves_down: int
    up_mapping_load: np.ndarray
    down_mapping_load: np.ndarray
    up_acceptable_load: np.ndarray
    down_acceptable_load: np.ndarray

    def mapping_load_of_edge(self, network: HierarchicalBusNetwork, child: int) -> float:
        """Total (both directions) mapping load of the edge above ``child``."""
        return float(self.up_mapping_load[child] + self.down_mapping_load[child])


def directed_basic_loads(
    network: HierarchicalBusNetwork,
    rooted: RootedTree,
    copies: Sequence[CopyRecord],
) -> Tuple[np.ndarray, np.ndarray]:
    """Basic loads ``L_b`` per directed edge for the given copies.

    A request issued by leaf ``p`` and served by a copy on node ``u`` is
    *basic* for every directed edge on the path from ``u`` to ``p``.  The
    result arrays are indexed by the child endpoint of each (parent, child)
    tree edge: ``up[child]`` is the child→parent direction and
    ``down[child]`` the parent→child direction.
    """
    n = network.n_nodes
    up = np.zeros(n, dtype=np.int64)
    down = np.zeros(n, dtype=np.int64)
    for copy in copies:
        u = copy.node
        for proc, reads, writes in copy.served:
            count = reads + writes
            if count == 0 or proc == u:
                continue
            path = rooted.path_nodes(u, proc)
            for a, b in zip(path, path[1:]):
                if rooted.parent(a) == b:
                    up[a] += count  # a -> parent(a)
                else:  # b is a child of a
                    down[b] += count  # parent(b) -> b
    return up, down


def map_copies_to_leaves(
    network: HierarchicalBusNetwork,
    copies_per_object: Sequence[ObjectCopies],
    root: Optional[int] = None,
    affected_objects: Optional[Sequence[int]] = None,
) -> MappingResult:
    """Run the mapping algorithm, mutating ``CopyRecord.node`` in place.

    Parameters
    ----------
    network:
        The hierarchical bus network.
    copies_per_object:
        Output of :func:`repro.core.deletion.apply_deletion` (mutated).
    root:
        Root for the phases; defaults to the network's canonical root.
    affected_objects:
        Objects to map.  Defaults to all objects that still hold a copy on
        a bus.

    Returns
    -------
    MappingResult
        Diagnostics; the final copy locations are recorded in the mutated
        :class:`~repro.core.deletion.CopyRecord` objects.

    Raises
    ------
    AlgorithmError
        If the downwards phase cannot find a free child edge -- impossible
        by Lemma 4.1 for well-formed inputs.
    """
    if root is None:
        root = network.canonical_root()
    rooted = network.rooted(root)

    if affected_objects is None:
        affected_objects = [
            oc.obj for oc in copies_per_object if oc.has_bus_copy(network)
        ]
    affected = tuple(int(x) for x in affected_objects)
    affected_set = set(affected)

    kappa_of: Dict[int, int] = {oc.obj: oc.kappa for oc in copies_per_object}
    participating: List[CopyRecord] = []
    for oc in copies_per_object:
        if oc.obj in affected_set:
            participating.extend(oc.copies)

    n = network.n_nodes
    empty = np.zeros(n, dtype=np.float64)
    if not participating or network.n_edges == 0:
        return MappingResult(
            root=root,
            affected_objects=affected,
            tau_max=0,
            moves_up=0,
            moves_down=0,
            up_mapping_load=empty.copy(),
            down_mapping_load=empty.copy(),
            up_acceptable_load=empty.copy(),
            down_acceptable_load=empty.copy(),
        )

    tau_max = max(c.s + kappa_of[c.obj] for c in participating)

    up_basic, down_basic = directed_basic_loads(network, rooted, participating)
    up_acc = 2.0 * up_basic.astype(np.float64)
    down_acc = 2.0 * down_basic.astype(np.float64)
    up_map = np.zeros(n, dtype=np.float64)
    down_map = np.zeros(n, dtype=np.float64)

    # copies currently stored at each node, in deterministic order
    at_node: Dict[int, List[CopyRecord]] = {v: [] for v in network.nodes()}
    order: Dict[int, int] = {}
    for seq, copy in enumerate(
        sorted(participating, key=lambda c: (c.obj, c.home, -c.s))
    ):
        order[id(copy)] = seq
        at_node[copy.node].append(copy)

    height = rooted.height
    by_level = rooted.nodes_by_level()

    # ------------------------------------------------------------------ #
    # upwards phase (Figure 5)
    # ------------------------------------------------------------------ #
    moves_up = 0
    for level in range(0, height):
        for v in by_level.get(level, []):
            parent = rooted.parent(v)
            if parent < 0:
                continue
            stash = at_node[v]
            stash.sort(key=lambda c: order[id(c)])
            while stash and up_map[v] + tau_max <= up_acc[v]:
                copy = stash.pop(0)
                cost = copy.s + kappa_of[copy.obj]
                copy.node = parent
                at_node[parent].append(copy)
                up_map[v] += cost
                moves_up += 1
            delta = up_acc[v] - up_map[v]
            up_acc[v] -= delta
            down_acc[v] -= delta

    # ------------------------------------------------------------------ #
    # downwards phase (Figure 6)
    # ------------------------------------------------------------------ #
    moves_down = 0
    for level in range(height, 0, -1):
        for v in by_level.get(level, []):
            if network.is_processor(v):
                continue
            stash = list(at_node[v])
            stash.sort(key=lambda c: order[id(c)])
            children = rooted.children(v)
            for copy in stash:
                cost = copy.s + kappa_of[copy.obj]
                best_child = None
                best_slack = None
                for child in children:
                    slack = down_acc[child] + tau_max - down_map[child] - cost
                    if slack >= 0 and (best_slack is None or slack > best_slack):
                        best_child, best_slack = child, slack
                if best_child is None:
                    raise AlgorithmError(
                        f"no free child edge at node {v} for a copy of object "
                        f"{copy.obj}; Lemma 4.1 excludes this for valid inputs"
                    )
                at_node[v].remove(copy)
                copy.node = best_child
                at_node[best_child].append(copy)
                down_map[best_child] += cost
                moves_down += 1

    # Sanity: every participating copy must now sit on a processor.
    for copy in participating:
        if not network.is_processor(copy.node):
            raise AlgorithmError(
                f"copy of object {copy.obj} remained on bus {copy.node} after mapping"
            )

    return MappingResult(
        root=root,
        affected_objects=affected,
        tau_max=int(tau_max),
        moves_up=moves_up,
        moves_down=moves_down,
        up_mapping_load=up_map,
        down_mapping_load=down_map,
        up_acceptable_load=up_acc,
        down_acceptable_load=down_acc,
    )
