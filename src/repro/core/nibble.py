"""Step 1: the nibble strategy of Maggs, Meyer auf der Heide, Vöcking and
Westermann (FOCS 1997), as described in Section 3.1 of the paper.

The nibble strategy computes, for every shared object ``x`` independently, a
placement of copies on the *nodes* of the tree (processors **and** buses)
that minimises the load on every edge simultaneously -- and therefore also
the congestion, regardless of the bandwidths.

For a fixed object ``x`` with per-node weights ``h(v) = h_r(v,x) + h_w(v,x)``
and total write frequency ``w(T) = κ_x``:

1. choose the *center of gravity* ``g(T)``: a node whose removal splits the
   tree into components each carrying at most half of the total weight
   (ties broken towards the smallest node id, as in the paper);
2. root the tree at ``g(T)``;
3. node ``v`` receives a copy iff ``v = g(T)`` or ``h(T(v)) > w(T)``, where
   ``T(v)`` is the maximal subtree rooted at ``v``.

Theorem 3.1 (tested in ``tests/core/test_nibble.py``): the copies form a
connected subtree containing ``g(T)``, every edge carries load at most
``κ_x`` for object ``x``, edges inside the copy subtree carry exactly
``κ_x``, and the per-edge load is minimal among *all* placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.placement import Placement
from repro.errors import AlgorithmError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "NibbleResult",
    "center_of_gravity",
    "gravity_candidates",
    "nibble_holders_for_object",
    "nibble_placement",
]


@dataclass(frozen=True)
class NibbleResult:
    """Output of the nibble strategy for a whole access pattern.

    Attributes
    ----------
    placement:
        Tree placement (holders may include buses), one holder set per object.
    centers:
        The chosen center of gravity ``g(T)`` per object.
    """

    placement: Placement
    centers: Tuple[int, ...]

    def holders(self, obj: int) -> frozenset:
        """Holder set of object ``obj``."""
        return self.placement.holders(obj)


def gravity_candidates(
    network: HierarchicalBusNetwork, weights: np.ndarray
) -> List[int]:
    """All nodes whose removal leaves components of weight at most half.

    ``weights`` is a per-node non-negative weight vector (``h(v)`` for the
    object under consideration).  The paper notes that this candidate set is
    never empty; for an all-zero weight vector every node qualifies.
    """
    weights = np.asarray(weights, dtype=np.int64)
    if weights.shape[0] != network.n_nodes:
        raise AlgorithmError("weights must have one entry per node")
    if np.any(weights < 0):
        raise AlgorithmError("weights must be non-negative")
    total = int(weights.sum())
    rooted = network.rooted(0)
    subtree = rooted.subtree_sums(weights)
    candidates: List[int] = []
    half = total / 2.0
    for v in network.nodes():
        # components when removing v: one per child subtree, plus the rest
        worst = 0
        for c in rooted.children(v):
            worst = max(worst, int(subtree[c]))
        rest = total - int(subtree[v])
        worst = max(worst, rest)
        if worst <= half:
            candidates.append(v)
    if not candidates:  # pragma: no cover - impossible by the paper's remark
        raise AlgorithmError("no gravity-center candidate found")
    return candidates


def center_of_gravity(network: HierarchicalBusNetwork, weights: np.ndarray) -> int:
    """The center of gravity: smallest-id node among :func:`gravity_candidates`."""
    return min(gravity_candidates(network, weights))


def nibble_holders_for_object(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    obj: int,
) -> Tuple[frozenset, int]:
    """Nibble holder set and gravity center for one object.

    Returns ``(holders, center)``.  For an object without any requests the
    holder set is ``{center}`` (an arbitrary but deterministic node).
    """
    weights = pattern.object_weights(obj)
    center = center_of_gravity(network, weights)
    total_writes = pattern.write_contention(obj)
    rooted = network.rooted(center)
    subtree_weights = rooted.subtree_sums(weights)
    holders = {center}
    for v in network.nodes():
        if v == center:
            continue
        if int(subtree_weights[v]) > total_writes:
            holders.add(v)
    return frozenset(holders), center


def nibble_placement(
    network: HierarchicalBusNetwork, pattern: AccessPattern
) -> NibbleResult:
    """Run the nibble strategy for every object of ``pattern``.

    The returned placement may put copies on buses; it is the step-1 input
    of the extended-nibble strategy and also serves as the congestion lower
    bound used throughout the benchmarks (Theorem 3.1 guarantees per-edge
    optimality).
    """
    pattern.validate_for(network)
    holders: List[frozenset] = []
    centers: List[int] = []
    for obj in range(pattern.n_objects):
        hs, center = nibble_holders_for_object(network, pattern, obj)
        holders.append(hs)
        centers.append(center)
    return NibbleResult(placement=Placement(holders), centers=tuple(centers))
