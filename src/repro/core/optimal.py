"""Exact solvers for the static placement problem on small instances.

Section 2 of the paper proves the problem NP-complete even on a 4-ary tree
of height 1, so exact solutions are only feasible for small instances.  The
benchmarks use them to measure the true approximation ratio of the
extended-nibble strategy (experiment E5) and to verify the PARTITION
reduction (experiment E2).

* :func:`optimal_nonredundant` -- branch-and-bound over single-holder
  placements (each object on exactly one processor).  The paper observes
  that when all requests are writes every optimal placement is
  non-redundant, so this solver is exact for write-only instances; for
  mixed instances it is exact *within* the non-redundant class.
* :func:`optimal_redundant` -- exhaustive search over all non-empty holder
  subsets per object with nearest-copy assignment; exact but only usable
  for tiny instances.
* :func:`placement_decision` -- decision-problem wrapper ("is there a
  placement with congestion at most ``k``?") used by the NP-hardness
  experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.congestion import compute_loads, object_edge_loads
from repro.core.loadstate import LoadState
from repro.core.placement import Placement
from repro.errors import InfeasibleError, PlacementError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "OptimalResult",
    "optimal_nonredundant",
    "optimal_redundant",
    "placement_decision",
]


@dataclass(frozen=True)
class OptimalResult:
    """Result of an exact placement search."""

    placement: Placement
    congestion: float
    explored: int  # number of (partial) placements examined


def _per_object_leaf_loads(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    procs: Sequence[int],
) -> List[np.ndarray]:
    """``loads[obj][:, leaf_index]`` = per-edge load of placing obj's copy there.

    One ``(n_edges, n_leaves)`` matrix per object, produced by a single
    batched LCA + path-incidence scatter per object instead of nested loops
    over leaves × requesters × path edges.
    """
    pm = network.rooted().path_matrix()
    procs_arr = np.asarray(procs, dtype=np.int64)
    n_leaves = procs_arr.size
    totals = pattern.totals
    out: List[np.ndarray] = []
    for obj in range(pattern.n_objects):
        requesters = np.asarray(pattern.requesters(obj), dtype=np.int64)
        if requesters.size == 0:
            out.append(np.zeros((network.n_edges, n_leaves), dtype=np.float64))
            continue
        counts = totals[requesters, obj].astype(np.float64)
        lcas = pm.lca(requesters[:, None], procs_arr[None, :])
        delta = np.zeros((network.n_nodes, n_leaves), dtype=np.float64)
        delta[requesters, :] += counts[:, None]
        np.add.at(delta, (procs_arr, np.arange(n_leaves)), counts.sum())
        cols = np.broadcast_to(np.arange(n_leaves), lcas.shape)
        np.add.at(delta, (lcas, cols), np.broadcast_to(-2.0 * counts[:, None], lcas.shape))
        out.append(pm.edge_loads_from_deltas(delta))
    return out


def optimal_nonredundant(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    max_nodes: int = 4_000_000,
    upper_bound: Optional[float] = None,
) -> OptimalResult:
    """Optimal single-holder placement via branch and bound.

    Parameters
    ----------
    network, pattern:
        The instance.
    max_nodes:
        Safety cap on the number of explored search nodes; exceeding it
        raises :class:`~repro.errors.InfeasibleError` (the instance is too
        large for exact search).
    upper_bound:
        Optional known upper bound on the optimal congestion (e.g. from the
        extended-nibble strategy); used to prune the search.
    """
    pattern.validate_for(network)
    procs = list(network.processors)
    if not procs:
        raise PlacementError("network has no processors")
    n_objects = pattern.n_objects

    per_obj_loads = _per_object_leaf_loads(network, pattern, procs)
    totals = pattern.total_requests_all()
    order = sorted(range(n_objects), key=lambda x: (-int(totals[x]), x))

    best_choice: Optional[List[int]] = None
    best_value = float("inf") if upper_bound is None else float(upper_bound) + 1e-12
    explored = 0

    # Partial placements are tentative moves on the incremental load state:
    # descending applies one per-object column, backtracking rolls it back,
    # and the congestion read is the engine's running max instead of a full
    # edge/bus rescan per search node.
    state = LoadState(network)
    choice = [0] * n_objects

    def recurse(idx: int) -> None:
        nonlocal best_choice, best_value, explored
        explored += 1
        if explored > max_nodes:
            raise InfeasibleError(
                f"branch-and-bound exceeded the limit of {max_nodes} nodes"
            )
        current = state.congestion
        if current >= best_value:
            return
        if idx == n_objects:
            best_value = current
            best_choice = choice.copy()
            return
        obj = order[idx]
        # Try leaves in order of the congestion they would produce alone, so
        # good solutions are found early and pruning becomes effective.  All
        # candidate leaves are scored in one batched column evaluation.
        scores = state.trial_congestions(per_obj_loads[obj])
        for li in np.argsort(scores, kind="stable"):
            li = int(li)
            snap = state.snapshot()
            state.apply_edge_loads(per_obj_loads[obj][:, li])
            choice[obj] = li
            recurse(idx + 1)
            state.rollback(snap)

    recurse(0)
    if best_choice is None:
        raise InfeasibleError(
            "no non-redundant placement beats the supplied upper bound"
            if upper_bound is not None
            else "no placement found (empty search space?)"
        )
    placement = Placement.single_holder([procs[best_choice[x]] for x in range(n_objects)])
    value = compute_loads(network, pattern, placement).congestion
    return OptimalResult(placement=placement, congestion=value, explored=explored)


def optimal_redundant(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    max_combinations: int = 2_000_000,
) -> OptimalResult:
    """Exhaustive search over all redundant placements (tiny instances only).

    Every object may be placed on any non-empty subset of the processors;
    requests are served by the nearest copy.  The number of combinations is
    ``(2^|P| - 1)^|X|`` and the function refuses to run when it exceeds
    ``max_combinations``.
    """
    pattern.validate_for(network)
    procs = list(network.processors)
    subsets = []
    for r in range(1, len(procs) + 1):
        subsets.extend(itertools.combinations(procs, r))
    total = len(subsets) ** pattern.n_objects
    if total > max_combinations:
        raise InfeasibleError(
            f"redundant search space has {total} combinations "
            f"(> {max_combinations}); use optimal_nonredundant instead"
        )
    n_objects = pattern.n_objects

    # Per-(object, subset) edge-load columns, each evaluated once; the
    # enumeration then walks the product space with snapshot/rollback on the
    # incremental load state instead of one full compute_loads per
    # combination.  Loads are additive and non-negative, so a prefix whose
    # congestion already reaches the best value cannot improve and its whole
    # subtree is pruned without affecting exactness.
    subset_loads: List[List[np.ndarray]] = []
    rooted = network.rooted()
    for obj in range(n_objects):
        per_subset = []
        for subset in subsets:
            placement = Placement([list(subset)] * n_objects)
            per_subset.append(
                object_edge_loads(network, pattern, placement, obj, rooted=rooted)
            )
        subset_loads.append(per_subset)

    best_choice: Optional[List[int]] = None
    best_value = float("inf")
    explored = 0
    state = LoadState(network, rooted)
    choice = [0] * n_objects

    def recurse(obj: int) -> None:
        nonlocal best_choice, best_value, explored
        if state.congestion >= best_value:
            return
        if obj == n_objects:
            explored += 1
            value = state.congestion
            if value < best_value:
                best_value = value
                best_choice = choice.copy()
            return
        for si in range(len(subsets)):
            choice[obj] = si
            snap = state.snapshot()
            state.apply_edge_loads(subset_loads[obj][si])
            recurse(obj + 1)
            state.rollback(snap)

    recurse(0)
    assert best_choice is not None  # the first leaf always beats the initial inf
    best_placement = Placement([list(subsets[si]) for si in best_choice])
    return OptimalResult(
        placement=best_placement, congestion=best_value, explored=explored
    )


def placement_decision(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    threshold: float,
    redundant: bool = False,
    tolerance: float = 1e-9,
    max_nodes: int = 4_000_000,
) -> bool:
    """Decision problem: does a placement with congestion ≤ ``threshold`` exist?

    This is the NP-complete question of Section 2.  With ``redundant=False``
    (the default) only single-holder placements are considered, which is
    exactly the paper's reduction setting (all requests there are writes, so
    redundancy never helps).
    """
    if redundant:
        result = optimal_redundant(network, pattern)
    else:
        result = optimal_nonredundant(
            network, pattern, max_nodes=max_nodes, upper_bound=None
        )
    return result.congestion <= threshold + tolerance
