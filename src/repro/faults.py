"""Deterministic fault injection for the serving and sweep stacks.

The robustness story of the repo (crash-safe sessions, durable
registries, reconnecting clients) is only trustworthy if the failure
paths are *exercised*, and only debuggable if a failing chaos run can be
replayed exactly.  This module is the seeded fault plane both needs:

* a :class:`FaultPlan` is a plain-data schedule of faults -- which
  instrumented *site* fires, what *kind* of fault, and at which hit
  counts -- hashed entirely from the plan seed, so two runs with the same
  plan inject byte-identical fault schedules;
* :func:`fault_point` is the hook the instrumented layers call
  (``serve/server.py``, ``serve/recorder.py``, ``serve/loadgen.py``,
  ``parallel.py``, ``lab/registry.py``).  With no plan installed it is a
  single global-load-and-return -- zero allocation, zero branching depth,
  no overhead worth measuring (``benchmarks/bench_serve.py`` keeps the
  streamed-vs-offline gate that pins this);
* every fired fault is logged through the ``repro.faults`` logger with
  its seed, site, kind and hit index, so any chaos failure names the
  exact plan that reproduces it.

Activation: :func:`install` programmatically, ``--fault-plan`` on the
``serve``/``loadgen`` CLI, or the ``REPRO_FAULT_PLAN`` environment
variable (a path to a plan JSON file, or the JSON text itself).  The
environment route matters for worker processes: the persistent pools of
:mod:`repro.parallel` spawn workers that inherit the environment, so a
worker-kill plan reaches them without any plumbing.

Fault kinds (interpreted by the hook sites):

``drop``
    Sever the connection (hooks raise :class:`ConnectionResetError`).
``crash``
    Simulate abrupt process death at the site (hooks raise
    :class:`~repro.errors.InjectedFault`; the serving stack treats it as
    a crash: no graceful footer, no error reply, the journal is left
    exactly as a killed process would leave it).
``stall``
    The engine task sleeps ``seconds`` before serving (what the server
    watchdog deadline exists to catch).
``slow-write``
    A socket write is split and delayed by ``seconds`` (partial-write /
    slow-peer simulation).
``disk-error``
    A durable write fails (hooks raise :class:`OSError`).
``torn-write``
    A durable write persists only a prefix of its payload and then
    crashes (hooks write the prefix, then raise
    :class:`~repro.errors.InjectedFault`) -- the torn ``index.json`` /
    truncated recording line scenario.
``kill``
    The worker process dies hard (``os.kill(os.getpid(), SIGKILL)``)
    -- the :class:`~repro.parallel.BrokenProcessPool` scenario.

Rules select hits deterministically: ``at`` fires at the listed 1-based
hit counts of the site, ``every`` fires every k-th hit, and ``prob``
fires when a hash of ``(plan seed, site, hit)`` falls under the
probability -- no RNG state, so concurrency and call interleavings across
sites never change which hits fire.  ``once`` (a sentinel file path)
limits a rule to a single firing *across processes*: the first process
to claim the sentinel fires, everyone else skips -- the worker-kill
scenario needs exactly this.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultError, InjectedFault

__all__ = [
    "FAULT_PLAN_FORMAT",
    "FAULT_KINDS",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "install",
    "clear",
    "reset",
    "plan_active",
    "active_plan",
    "fault_point",
    "raise_fault",
]

FAULT_PLAN_FORMAT = "repro.fault-plan/v1"

FAULT_KINDS = (
    "drop",
    "crash",
    "stall",
    "slow-write",
    "disk-error",
    "torn-write",
    "kill",
)

logger = logging.getLogger("repro.faults")


@dataclass(frozen=True)
class Fault:
    """One fired fault: what the hook site must now simulate."""

    site: str
    kind: str
    hit: int
    seed: int
    seconds: float = 0.0

    def describe(self) -> str:
        """The replay-complete identity of this firing."""
        return (
            f"seed={self.seed} site={self.site} kind={self.kind} "
            f"hit={self.hit}"
        )


@dataclass(frozen=True)
class FaultRule:
    """One schedule rule: when a site fires and what kind of fault.

    Exactly one trigger may be set: ``at`` (explicit 1-based hit counts),
    ``every`` (every k-th hit) or ``prob`` (seeded per-hit coin).  With no
    trigger the rule fires on *every* hit.  ``once`` points at a sentinel
    file: the rule only fires while the sentinel does not exist, and
    firing creates it -- a cross-process "exactly one kill" latch.
    """

    site: str
    kind: str
    at: Tuple[int, ...] = ()
    every: int = 0
    prob: float = 0.0
    seconds: float = 0.0
    once: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r} (have: {FAULT_KINDS})"
            )
        triggers = sum((bool(self.at), self.every > 0, self.prob > 0))
        if triggers > 1:
            raise FaultError(
                f"rule for {self.site!r} sets more than one of at/every/prob"
            )
        if self.prob < 0 or self.prob > 1:
            raise FaultError(f"prob must be in [0, 1], got {self.prob}")

    def matches(self, hit: int, seed: int) -> bool:
        """Does this rule fire at the given 1-based hit count?"""
        if self.at:
            return hit in self.at
        if self.every:
            return hit % self.every == 0
        if self.prob:
            return _hash_unit(seed, self.site, hit) < self.prob
        return True

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.at:
            document["at"] = list(self.at)
        if self.every:
            document["every"] = self.every
        if self.prob:
            document["prob"] = self.prob
        if self.seconds:
            document["seconds"] = self.seconds
        if self.once is not None:
            document["once"] = self.once
        return document

    @classmethod
    def from_dict(cls, document: Mapping) -> "FaultRule":
        try:
            return cls(
                site=str(document["site"]),
                kind=str(document["kind"]),
                at=tuple(int(x) for x in document.get("at", ())),
                every=int(document.get("every", 0)),
                prob=float(document.get("prob", 0.0)),
                seconds=float(document.get("seconds", 0.0)),
                once=document.get("once"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault rule {document!r}") from exc


def _hash_unit(seed: int, site: str, hit: int) -> float:
    """Deterministic uniform [0, 1) draw for ``(seed, site, hit)``.

    A keyed hash instead of RNG state: which hits fire never depends on
    call order across sites or on how many other sites fired first.
    """
    digest = hashlib.sha256(f"{seed}:{site}:{hit}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable schedule of faults."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FAULT_PLAN_FORMAT,
            "seed": self.seed,
            "faults": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, document: Mapping) -> "FaultPlan":
        fmt = document.get("format", FAULT_PLAN_FORMAT)
        if fmt != FAULT_PLAN_FORMAT:
            raise FaultError(f"unknown fault-plan format {fmt!r}")
        rules = document.get("faults", document.get("rules", ()))
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise FaultError("fault plan 'faults' must be a list of rules")
        return cls(
            seed=int(document.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a plan from a JSON file path or inline JSON text."""
        text = spec.strip()
        if not text.startswith("{"):
            path = Path(text)
            if not path.exists():
                raise FaultError(f"fault plan file {spec!r} does not exist")
            text = path.read_text(encoding="utf-8")
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(document, Mapping):
            raise FaultError("fault plan must be a JSON object")
        return cls.from_dict(document)


class FaultInjector:
    """Per-process firing engine of one :class:`FaultPlan`.

    Keeps one monotonically increasing hit counter per site; rule
    matching is a pure function of ``(plan, site, hit)`` plus the
    cross-process ``once`` sentinels, so a run under a plan is exactly
    replayable.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.hits: Dict[str, int] = {}
        self.fired: List[Fault] = []
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in plan.rules:
            self._by_site.setdefault(rule.site, []).append(rule)

    def check(self, site: str) -> Optional[Fault]:
        """Count one hit at ``site``; return the fault to inject, if any."""
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for rule in self._by_site.get(site, ()):
            if not rule.matches(hit, self.plan.seed):
                continue
            if rule.once is not None and not _claim_sentinel(rule.once):
                continue
            fault = Fault(
                site=site,
                kind=rule.kind,
                hit=hit,
                seed=self.plan.seed,
                seconds=rule.seconds,
            )
            self.fired.append(fault)
            logger.warning("injected fault %s", fault.describe())
            return fault
        return None


def _claim_sentinel(path: str) -> bool:
    """Atomically claim a once-sentinel; True iff this call won the claim."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unreachable sentinel dir: never fire, never wedge
    os.write(fd, b"fired\n")
    os.close(fd)
    return True


# --------------------------------------------------------------------------- #
# the process-global injector
# --------------------------------------------------------------------------- #
_UNSET = object()
_INJECTOR: object = _UNSET  # _UNSET -> consult env once; None -> off


def install(plan: FaultPlan) -> FaultInjector:
    """Install a plan process-wide; returns the live injector."""
    global _INJECTOR
    injector = FaultInjector(plan)
    _INJECTOR = injector
    logger.warning(
        "fault plan installed: seed=%d rules=%d", plan.seed, len(plan.rules)
    )
    return injector


def clear() -> None:
    """Deactivate fault injection (the environment is NOT re-read)."""
    global _INJECTOR
    _INJECTOR = None


def reset() -> None:
    """Forget everything; the next hook call re-reads ``REPRO_FAULT_PLAN``."""
    global _INJECTOR
    _INJECTOR = _UNSET


def _resolve() -> Optional[FaultInjector]:
    global _INJECTOR
    if _INJECTOR is _UNSET:
        spec = os.environ.get("REPRO_FAULT_PLAN")
        if spec:
            install(FaultPlan.from_spec(spec))
        else:
            _INJECTOR = None
    return _INJECTOR  # type: ignore[return-value]


def plan_active() -> bool:
    """True iff a fault plan is installed (env consulted lazily)."""
    return _resolve() is not None


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, if any."""
    injector = _resolve()
    return None if injector is None else injector.plan


def fault_point(site: str) -> Optional[Fault]:
    """The hook: count a hit at ``site``, return the fault to inject.

    The off path is the contract: with no plan installed this is one
    global load and a ``return None`` -- instrumented hot paths stay
    unmeasurably close to uninstrumented ones.
    """
    injector = _INJECTOR
    if injector is None:
        return None
    if injector is _UNSET:
        injector = _resolve()
        if injector is None:
            return None
    return injector.check(site)  # type: ignore[union-attr]


def raise_fault(fault: Fault) -> None:
    """Raise the exception a fired fault maps to (for raise-only kinds).

    ``drop`` -> :class:`ConnectionResetError`, ``disk-error`` ->
    :class:`OSError`, ``crash``/``torn-write`` ->
    :class:`~repro.errors.InjectedFault`.  Kinds carrying behaviour the
    site must perform itself (``stall``, ``slow-write``, ``kill``,
    the prefix write of ``torn-write``) are the caller's job.
    """
    message = f"injected fault: {fault.describe()}"
    if fault.kind == "drop":
        raise ConnectionResetError(message)
    if fault.kind == "disk-error":
        raise OSError(message)
    raise InjectedFault(message)
